"""The per-figure experiment registry.

One function per table/figure of the paper's evaluation (reconstructed —
see DESIGN.md's mismatch note). Each returns a
:class:`~repro.harness.report.FigureResult` carrying the paper-style rows
plus machine-checked *shape* assertions: dilated-vs-baseline agreement,
who wins, where knees fall. Benchmarks and the CLI both consume this
registry.

Since the parallel sweep runner, every figure exists in a two-phase form
(:data:`CELL_MODEL`): ``cells()`` enumerates the figure's independent
simulations as picklable :class:`~repro.harness.runner.CellSpec`\\ s and
``assemble(results)`` folds their results into the FigureResult. The
classic one-shot functions in :data:`FIGURES` are thin wrappers that
execute their own cells in-process and assemble — same code path, same
bytes — so ``run_figure`` behaves exactly as it always did while
``repro-figure --jobs N`` fans the same cells out across processes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from ..core.dilation import (
    NetworkProfile,
    cpu_share_for_constant_speed,
    resource_scaling_rows,
)
from ..simnet.impairments import ImpairmentSpec
from ..simnet.schedule import ScheduleSpec
from ..simnet.units import format_rate, format_time, gbps, mbps, ms
from ..stats.cdf import ks_distance, percentile
from .ascii_chart import line_chart
from .experiments import relative_error
from .report import FigureResult, Table
from .runner import CellSpec, FigureCells, execute_cells_inline

__all__ = ["FIGURES", "CELL_MODEL", "figure_ids", "run_figure"]

#: Agreement tolerance between a dilated run and its scaled baseline.
#: The substrate is deterministic, so this is float-jitter headroom only.
EQUIVALENCE_TOLERANCE = 0.02

#: Agreement tolerance for equivalence *under impairment* (the issue's
#: acceptance bar). Deterministic per-packet impairments reproduce
#: bit-identically under dilation, so runs normally land at 0 error; the
#: 5% headroom covers retransmit-count quantisation on short windows.
LOSSY_TOLERANCE = 0.05


def _cell(figure_id: str, key: str, runner: str, **kwargs: Any) -> CellSpec:
    return CellSpec(figure_id=figure_id, key=key, runner=runner, kwargs=kwargs)


# =============================================================== table1


def _table1_cells() -> List[CellSpec]:
    return []  # pure arithmetic — nothing to simulate


def _table1_assemble(results: Mapping[str, Any]) -> FigureResult:
    physical = NetworkProfile(mbps(100), ms(10), cpu_cycles_per_second=1e9)
    rows = resource_scaling_rows(physical, tdfs=[1, 10, 100, 1000])
    table = Table(
        ["TDF", "physical b/w", "perceived b/w", "physical delay",
         "perceived delay", "perceived CPU"],
        title="Perceived resources of a 100 Mbps / 10 ms / 1 GHz testbed",
    )
    for row in rows:
        table.add_row(
            str(row.tdf.value),
            format_rate(row.physical_bandwidth_bps),
            format_rate(row.perceived_bandwidth_bps),
            format_time(row.physical_delay_s),
            format_time(row.perceived_delay_s),
            f"{row.perceived_cpu_cycles_per_second / 1e9:.1f} GHz",
        )
    result = FigureResult("table1", "Resource scaling under time dilation", table)
    result.check(
        "perceived bandwidth grows linearly in TDF",
        rows[1].perceived_bandwidth_bps == 10 * rows[0].perceived_bandwidth_bps
        and rows[2].perceived_bandwidth_bps == 100 * rows[0].perceived_bandwidth_bps,
    )
    result.check(
        "perceived delay shrinks linearly in TDF",
        abs(rows[1].perceived_delay_s * 10 - rows[0].perceived_delay_s) < 1e-12,
    )
    result.check(
        "TDF 1000 pushes a 100 Mbps testbed past 100 Gbps ('to infinity')",
        rows[3].perceived_bandwidth_bps >= 100e9,
    )
    return result


def table1_resource_scaling() -> FigureResult:
    """Table 1: what a fixed physical testbed looks like under dilation."""
    return _run_inline("table1")


# =============================================================== table2

_TABLE2_CASES = [
    (tdf, share)
    for tdf in (1, 2, 10)
    for share in (1.0, cpu_share_for_constant_speed(tdf))
]


def _table2_cells() -> List[CellSpec]:
    return [
        _cell("table2", f"tdf{tdf}-share{share!r}", "run_cpu_task",
              tdf=tdf, cpu_share=share)
        for tdf, share in _TABLE2_CASES
    ]


def _table2_assemble(results: Mapping[str, Any]) -> FigureResult:
    table = Table(
        ["TDF", "VMM share", "virtual time", "physical time",
         "perceived speedup"],
        title="2e9-cycle task on a 1 GHz host (nominal 2.0 s)",
    )
    cases = []
    for tdf, share in _TABLE2_CASES:
        result = results[f"tdf{tdf}-share{share!r}"]
        cases.append((tdf, share, result))
        table.add_row(
            tdf, f"{share:.2f}",
            f"{result.virtual_duration_s:.3f} s",
            f"{result.physical_duration_s:.3f} s",
            f"{result.perceived_speedup:.1f}x",
        )
    figure = FigureResult("table2", "CPU dilation and compensation", table)
    full_share = {tdf: r for tdf, share, r in cases if share == 1.0}
    compensated = {
        tdf: r for tdf, share, r in cases
        if abs(share - cpu_share_for_constant_speed(tdf)) < 1e-9
    }
    figure.check(
        "full share: guest sees CPU k-times faster",
        all(
            abs(full_share[tdf].perceived_speedup - tdf) < 1e-6
            for tdf in (1, 2, 10)
        ),
    )
    figure.check(
        "1/k share: perceived CPU speed is constant",
        all(
            abs(compensated[tdf].perceived_speedup - 1.0) < 1e-6
            for tdf in (1, 2, 10)
        ),
    )
    figure.check(
        "physical time at full share is unchanged by dilation",
        all(
            abs(full_share[tdf].physical_duration_s - 2.0) < 1e-9
            for tdf in (1, 2, 10)
        ),
    )
    return figure


def table2_cpu_dilation() -> FigureResult:
    """Table 2: CPU-bound task timing with and without share compensation."""
    return _run_inline("table2")


# ================================================================= fig3

_FIG3_RTTS_MS = [10, 20, 40, 80, 160]
_FIG3_TDFS = [1, 10, 100]


def _fig3_cells() -> List[CellSpec]:
    return [
        _cell("fig3", f"rtt{rtt}-tdf{k}", "run_bulk",
              perceived=NetworkProfile.from_rtt(mbps(100), ms(rtt)),
              tdf=k, duration_s=6.0, warmup_s=2.0)
        for rtt in _FIG3_RTTS_MS
        for k in _FIG3_TDFS
    ]


def _fig3_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    rtts_ms = _FIG3_RTTS_MS
    tdfs = _FIG3_TDFS
    table = Table(
        ["RTT (ms)"] + [f"TDF {k} (Mbps)" for k in tdfs] + ["max rel err"],
        title="TCP goodput vs perceived RTT (perceived bottleneck 100 Mbps)",
    )
    figure = FigureResult("fig3", "Throughput vs RTT under dilation", table)
    curve: Dict[int, List[float]] = {k: [] for k in tdfs}
    for rtt in rtts_ms:
        results = {k: cell_results[f"rtt{rtt}-tdf{k}"] for k in tdfs}
        base = results[1].goodput_bps
        worst = max(relative_error(results[k].goodput_bps, base) for k in tdfs)
        table.add_row(
            rtt,
            *(f"{results[k].goodput_bps / 1e6:.2f}" for k in tdfs),
            f"{worst * 100:.3f}%",
        )
        for k in tdfs:
            curve[k].append(results[k].goodput_bps)
        figure.check(
            f"RTT {rtt} ms: dilated goodput within "
            f"{EQUIVALENCE_TOLERANCE:.0%} of baseline",
            worst <= EQUIVALENCE_TOLERANCE,
        )
    figure.check(
        "goodput does not improve as RTT grows (TCP's RTT penalty)",
        curve[1][0] > curve[1][-1],
    )
    figure.chart = line_chart(
        {
            f"TDF {k}": list(zip(rtts_ms, (v / 1e6 for v in curve[k])))
            for k in tdfs
        },
        x_label="perceived RTT (ms)",
        y_label="goodput (Mbps) — the curves overprint: that IS the result",
    )
    figure.notes.append(
        "paper shape: all three TDF curves lie on top of each other; "
        "absolute goodput declines with RTT"
    )
    return figure


def fig3_throughput_vs_rtt() -> FigureResult:
    """Figure 3: TCP throughput vs RTT; dilated curves coincide with TDF 1."""
    return _run_inline("fig3")


# ================================================================= fig4

_FIG4_BANDWIDTHS_MBPS = [1, 10, 50, 200]
_FIG4_TDFS = [1, 10, 100]


def _fig4_cells() -> List[CellSpec]:
    return [
        _cell("fig4", f"bw{bw}-tdf{k}", "run_bulk",
              perceived=NetworkProfile.from_rtt(mbps(bw), ms(40)),
              tdf=k, duration_s=5.0, warmup_s=2.0)
        for bw in _FIG4_BANDWIDTHS_MBPS
        for k in _FIG4_TDFS
    ]


def _fig4_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    bandwidths_mbps = _FIG4_BANDWIDTHS_MBPS
    tdfs = _FIG4_TDFS
    table = Table(
        ["perceived b/w (Mbps)"] + [f"TDF {k} (Mbps)" for k in tdfs]
        + ["max rel err"],
        title="TCP goodput vs perceived bandwidth (perceived RTT 40 ms)",
    )
    figure = FigureResult("fig4", "Throughput vs bandwidth under dilation", table)
    baseline_curve = []
    for bandwidth in bandwidths_mbps:
        results = {k: cell_results[f"bw{bandwidth}-tdf{k}"] for k in tdfs}
        base = results[1].goodput_bps
        baseline_curve.append(base)
        worst = max(relative_error(results[k].goodput_bps, base) for k in tdfs)
        table.add_row(
            bandwidth,
            *(f"{results[k].goodput_bps / 1e6:.2f}" for k in tdfs),
            f"{worst * 100:.3f}%",
        )
        figure.check(
            f"{bandwidth} Mbps: dilated within {EQUIVALENCE_TOLERANCE:.0%}",
            worst <= EQUIVALENCE_TOLERANCE,
        )
        figure.check(
            f"{bandwidth} Mbps: goodput attains >=60% of the bottleneck",
            base >= 0.6 * mbps(bandwidth),
        )
    figure.check(
        "goodput increases with bottleneck bandwidth",
        all(a < b for a, b in zip(baseline_curve, baseline_curve[1:])),
    )
    figure.chart = line_chart(
        {
            "achieved (all TDFs coincide)": [
                (bw, v / 1e6)
                for bw, v in zip(bandwidths_mbps, baseline_curve)
            ],
            "line rate": [(bw, float(bw)) for bw in bandwidths_mbps],
        },
        x_label="perceived bottleneck (Mbps)",
        y_label="goodput (Mbps)",
    )
    return figure


def fig4_throughput_vs_bandwidth() -> FigureResult:
    """Figure 4: TCP throughput vs perceived bottleneck bandwidth."""
    return _run_inline("fig4")


# ================================================================= fig5

_FIG5_TDFS = [1, 10, 100]


def _fig5_cells() -> List[CellSpec]:
    return [
        _cell("fig5", f"tdf{k}", "run_bulk",
              perceived=NetworkProfile.from_rtt(mbps(10), ms(40)),
              tdf=k, duration_s=4.0, warmup_s=1.0,
              collect_interarrivals=True)
        for k in _FIG5_TDFS
    ]


def _fig5_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    perceived = NetworkProfile.from_rtt(mbps(10), ms(40))
    tdfs = _FIG5_TDFS
    runs = {k: cell_results[f"tdf{k}"] for k in tdfs}
    table = Table(
        ["percentile"] + [f"TDF {k} (us)" for k in tdfs],
        title="Sink packet interarrival times, virtual microseconds",
    )
    figure = FigureResult("fig5", "Interarrival distribution under dilation", table)
    for q in (10, 25, 50, 75, 90, 99):
        table.add_row(
            f"p{q}",
            *(
                f"{percentile(runs[k].interarrivals, q) * 1e6:.1f}"
                for k in tdfs
            ),
        )
    for k in (10, 100):
        distance = ks_distance(runs[1].interarrivals, runs[k].interarrivals)
        figure.check(
            f"KS distance TDF {k} vs baseline < 0.02 (got {distance:.4f})",
            distance < 0.02,
        )
    median = percentile(runs[1].interarrivals, 50)
    expected = 1500 * 8 / perceived.bandwidth_bps  # full frame at line rate
    figure.check(
        "median interarrival matches bottleneck serialisation time ±20%",
        abs(median - expected) / expected < 0.2,
    )
    figure.notes.append(
        f"expected full-frame spacing at 10 Mbps: {expected * 1e6:.0f} us"
    )
    return figure


def fig5_interarrival_distribution() -> FigureResult:
    """Figure 5: packet interarrival distribution preserved under dilation."""
    return _run_inline("fig5")


# ================================================================= fig6


def _jain(values: List[float]) -> float:
    if not values:
        return 0.0
    return sum(values) ** 2 / (len(values) * sum(v * v for v in values))


_FIG6_TDFS = [1, 10]
_FIG6_FLOWS = 4


def _fig6_cells() -> List[CellSpec]:
    return [
        _cell("fig6", f"tdf{k}", "run_bulk",
              perceived=NetworkProfile.from_rtt(mbps(50), ms(20)),
              tdf=k, duration_s=8.0, warmup_s=2.0, flows=_FIG6_FLOWS)
        for k in _FIG6_TDFS
    ]


def _fig6_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    tdfs = _FIG6_TDFS
    flows = _FIG6_FLOWS
    runs = {k: cell_results[f"tdf{k}"] for k in tdfs}
    table = Table(
        ["flow"] + [f"TDF {k} (Mbps)" for k in tdfs],
        title="Per-flow goodput, 4 flows through a 50 Mbps bottleneck",
    )
    figure = FigureResult("fig6", "Multi-flow fairness under dilation", table)
    for index in range(flows):
        table.add_row(
            index,
            *(f"{runs[k].per_flow_goodput_bps[index] / 1e6:.2f}" for k in tdfs),
        )
    jains = {k: _jain(runs[k].per_flow_goodput_bps) for k in tdfs}
    table.add_row("Jain", *(f"{jains[k]:.4f}" for k in tdfs))
    aggregate_err = relative_error(runs[10].goodput_bps, runs[1].goodput_bps)
    figure.check(
        "aggregate goodput matches baseline",
        aggregate_err <= EQUIVALENCE_TOLERANCE,
    )
    per_flow_err = max(
        relative_error(d, b)
        for d, b in zip(runs[10].per_flow_goodput_bps, runs[1].per_flow_goodput_bps)
    )
    figure.check(
        f"every flow's share matches baseline (max err {per_flow_err:.4f})",
        per_flow_err <= EQUIVALENCE_TOLERANCE,
    )
    figure.check(
        f"sharing is reasonably fair (Jain {jains[1]:.3f} >= 0.8)",
        jains[1] >= 0.8,
    )
    figure.check(
        "bottleneck is saturated by the aggregate",
        runs[1].goodput_bps >= 0.7 * mbps(50),
    )
    return figure


def fig6_multiflow_fairness() -> FigureResult:
    """Figure 6: bottleneck sharing among competing flows is preserved."""
    return _run_inline("fig6")


# ============================================================ fig7 / fig8

#: Offered loads swept by fig7/fig8. With a 1e8-cycle/s host, a 0.5 VMM
#: share and ~2.1e6 cycles per request, the server's CPU service ceiling
#: sits near 25 req/s — the sweep brackets that knee.
_WEB_RATES = [5, 15, 25, 50, 100]
_WEB_HOST_CPS = 1e8
_WEB_TDFS = [1, 10]


def _web_cells(figure_id: str) -> List[CellSpec]:
    """The shared fig7/fig8 web sweep.

    Both figures enumerate identical (runner, kwargs) cells, so the sweep
    runner's content-addressed dedup executes each point exactly once per
    ``all`` — the cell-model generalisation of the old in-module memo.
    """
    return [
        _cell(figure_id, f"tdf{tdf}-rate{rate}", "run_web",
              perceived=NetworkProfile.from_rtt(mbps(100), ms(20)),
              tdf=tdf, rate_rps=rate, duration_s=10.0, seed=1234,
              host_cycles_per_second=_WEB_HOST_CPS)
        for tdf in _WEB_TDFS
        for rate in _WEB_RATES
    ]


def _web_sweep(cell_results: Mapping[str, Any]) -> Dict[int, Dict[float, Any]]:
    return {
        tdf: {rate: cell_results[f"tdf{tdf}-rate{rate}"] for rate in _WEB_RATES}
        for tdf in _WEB_TDFS
    }


def _fig7_cells() -> List[CellSpec]:
    return _web_cells("fig7")


def _fig7_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    sweep = _web_sweep(cell_results)
    table = Table(
        ["offered (req/s)", "TDF 1 (req/s)", "TDF 10 (req/s)", "rel err"],
        title="Web server completion rate vs offered load "
              "(CPU ceiling ~25 req/s)",
    )
    figure = FigureResult("fig7", "Web throughput under dilation", table)
    for rate in _WEB_RATES:
        base = sweep[1][rate].throughput_rps
        dilated = sweep[10][rate].throughput_rps
        err = relative_error(dilated, base)
        table.add_row(rate, f"{base:.1f}", f"{dilated:.1f}", f"{err * 100:.3f}%")
        figure.check(
            f"offered {rate}/s: dilated matches baseline",
            err <= EQUIVALENCE_TOLERANCE,
        )
    below_knee = sweep[1][_WEB_RATES[0]].throughput_rps
    saturated = sweep[1][_WEB_RATES[-1]].throughput_rps
    figure.check(
        "below the knee the server keeps up with offered load",
        relative_error(below_knee, _WEB_RATES[0]) < 0.15,
    )
    figure.check(
        "past the knee throughput plateaus near the CPU ceiling (~25/s)",
        saturated < 35,
    )
    figure.chart = line_chart(
        {
            "TDF 1": [(r, sweep[1][r].throughput_rps) for r in _WEB_RATES],
            "TDF 10": [(r, sweep[10][r].throughput_rps) for r in _WEB_RATES],
        },
        x_label="offered load (req/s)",
        y_label="completed (req/s) — curves overprint",
    )
    return figure


def fig7_web_throughput() -> FigureResult:
    """Figure 7: web server throughput vs offered load, TDF 1 vs 10."""
    return _run_inline("fig7")


def _fig8_cells() -> List[CellSpec]:
    return _web_cells("fig8")


def _fig8_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    sweep = _web_sweep(cell_results)
    table = Table(
        ["offered (req/s)", "TDF 1 mean (ms)", "TDF 10 mean (ms)",
         "TDF 1 p95 (ms)", "TDF 10 p95 (ms)"],
        title="Client-observed response time vs offered load",
    )
    figure = FigureResult("fig8", "Web response time under dilation", table)
    means = []
    for rate in _WEB_RATES:
        base = sweep[1][rate]
        dilated = sweep[10][rate]
        means.append(base.mean_latency_s)
        table.add_row(
            rate,
            f"{base.mean_latency_s * 1e3:.1f}",
            f"{dilated.mean_latency_s * 1e3:.1f}",
            f"{base.p95_latency_s * 1e3:.1f}",
            f"{dilated.p95_latency_s * 1e3:.1f}",
        )
        figure.check(
            f"offered {rate}/s: dilated mean latency matches baseline",
            relative_error(dilated.mean_latency_s, base.mean_latency_s)
            <= EQUIVALENCE_TOLERANCE,
        )
    figure.check(
        "latency explodes past the saturation knee (>10x the unloaded mean)",
        means[-1] > 10 * means[0],
    )
    figure.check(
        "latency is flat well below the knee",
        means[1] < 3 * means[0],
    )
    figure.chart = line_chart(
        {
            "TDF 1 mean": [
                (r, sweep[1][r].mean_latency_s * 1e3) for r in _WEB_RATES
            ],
            "TDF 10 mean": [
                (r, sweep[10][r].mean_latency_s * 1e3) for r in _WEB_RATES
            ],
        },
        x_label="offered load (req/s)",
        y_label="mean response time (ms) — curves overprint",
    )
    return figure


def fig8_web_response_time() -> FigureResult:
    """Figure 8: response time vs offered load, TDF 1 vs 10."""
    return _run_inline("fig8")


# ================================================================= fig9


def _fig9_cells() -> List[CellSpec]:
    return [
        _cell("fig9", f"tdf{tdf}", "run_bittorrent",
              perceived_leaf=NetworkProfile.from_rtt(mbps(10), ms(20)),
              tdf=tdf, leechers=12, file_bytes=2 << 20, seed=777)
        for tdf in (1, 10)
    ]


def _fig9_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    base = cell_results["tdf1"]
    dilated = cell_results["tdf10"]
    table = Table(
        ["percentile", "TDF 1 (s)", "TDF 10 (s)"],
        title="Download completion time across 12 leechers (2 MiB file)",
    )
    figure = FigureResult("fig9", "BitTorrent download times under dilation", table)
    for q in (10, 50, 90, 100):
        table.add_row(
            f"p{q}",
            f"{percentile(base.download_times_s, q):.2f}",
            f"{percentile(dilated.download_times_s, q):.2f}",
        )
    figure.check("all leechers complete (baseline)", base.completed == 12)
    figure.check("all leechers complete (dilated)", dilated.completed == 12)
    if base.download_times_s and dilated.download_times_s:
        mean_err = relative_error(
            sum(dilated.download_times_s) / len(dilated.download_times_s),
            sum(base.download_times_s) / len(base.download_times_s),
        )
        figure.check(
            f"mean download time within 10% of baseline (err {mean_err:.4f})",
            mean_err <= 0.10,
        )
        p90_err = relative_error(
            percentile(dilated.download_times_s, 90),
            percentile(base.download_times_s, 90),
        )
        figure.check(
            f"p90 download time within 15% (err {p90_err:.4f})",
            p90_err <= 0.15,
        )
        median_err = relative_error(
            percentile(dilated.download_times_s, 50),
            percentile(base.download_times_s, 50),
        )
        figure.check(
            f"median download time within 10% (err {median_err:.4f})",
            median_err <= 0.10,
        )
        distance = ks_distance(base.download_times_s, dilated.download_times_s)
        # The bar is "3 rank shifts out of 12 samples": compare on the
        # integer rank count so a KS of exactly 3/12 is not failed by the
        # ECDF arithmetic's last-ulp float noise.
        shifts = round(distance * len(base.download_times_s))
        figure.check(
            f"CDFs within 3 rank shifts of each other "
            f"(KS {distance:.3f}, {shifts} shifts <= 3)",
            shifts <= 3,
        )
    figure.notes.append(
        "the swarm interleaves dozens of independent flows, so event-tie "
        "ordering is sensitive to float jitter in the virtual->physical "
        "map; dilated runs are statistically, not bit-, identical here — "
        "which is also all the paper's testbed could claim"
    )
    figure.notes.append(
        f"seed uploaded {base.seed_uploaded_bytes} B of "
        f"{base.total_downloaded_bytes} B total — the swarm shares the rest"
    )
    return figure


def fig9_bittorrent_cdf() -> FigureResult:
    """Figure 9: BitTorrent download-time CDF, TDF 1 vs 10."""
    return _run_inline("fig9")


# ================================================================ fig10

_FIG10_TARGETS_GBPS = (2.5, 5.0, 10.0)
_FIG10_TDF = 10


def _fig10_cells() -> List[CellSpec]:
    cells = []
    for target_gbps in _FIG10_TARGETS_GBPS:
        perceived = NetworkProfile.from_rtt(gbps(target_gbps), ms(4))
        for tdf in (1, _FIG10_TDF):
            cells.append(
                _cell("fig10", f"gbps{target_gbps}-tdf{tdf}", "run_bulk",
                      perceived=perceived, tdf=tdf, duration_s=2.5,
                      warmup_s=1.0, mss=8960)
            )
    return cells


def _fig10_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    tdf = _FIG10_TDF
    table = Table(
        ["perceived b/w", "physical b/w", "TDF 1 (Gbps)", "TDF 10 (Gbps)",
         "rel err"],
        title="Scaling beyond the testbed's line rate (perceived RTT 4 ms, "
              "9000-byte frames)",
    )
    figure = FigureResult("fig10", "Beyond line rate with dilation", table)
    goodputs = []
    for target_gbps in _FIG10_TARGETS_GBPS:
        perceived = NetworkProfile.from_rtt(gbps(target_gbps), ms(4))
        base = cell_results[f"gbps{target_gbps}-tdf1"]
        dilated = cell_results[f"gbps{target_gbps}-tdf{tdf}"]
        err = relative_error(dilated.goodput_bps, base.goodput_bps)
        goodputs.append(dilated.goodput_bps)
        table.add_row(
            format_rate(perceived.bandwidth_bps),
            format_rate(perceived.bandwidth_bps / tdf),
            f"{base.goodput_bps / 1e9:.3f}",
            f"{dilated.goodput_bps / 1e9:.3f}",
            f"{err * 100:.3f}%",
        )
        figure.check(
            f"{target_gbps} Gbps: dilated matches baseline",
            err <= EQUIVALENCE_TOLERANCE,
        )
    figure.check(
        "perceived goodput scales with the perceived link, beyond 1 Gbps",
        goodputs[-1] > goodputs[0] and goodputs[-1] > 1e9,
    )
    figure.check(
        "10 Gbps path achieves >=50% utilisation in the measured window",
        goodputs[-1] >= 5e9,
    )
    return figure


def fig10_beyond_gigabit() -> FigureResult:
    """Figure 10: emulating multi-gigabit paths on sub-gigabit 'hardware'.

    The headline trick: at TDF 10 the physical substrate never carries
    more than one tenth of the perceived rate, yet the guests observe (and
    TCP fills) a 10 Gbps path — hardware that, in 2006, did not exist.
    """
    return _run_inline("fig10")


# ============================================================ ablation1


def _ablation1_cells() -> List[CellSpec]:
    perceived = NetworkProfile.from_rtt(mbps(20), ms(40))
    # Wrong setup: dilate guests but hand them the target-valued physical
    # network (equivalent to forgetting the bandwidth/delay rescale step).
    wrong_perceived = NetworkProfile.from_rtt(
        perceived.bandwidth_bps * 10, perceived.rtt_s / 10
    )
    return [
        _cell("ablation1", "base", "run_bulk",
              perceived=perceived, tdf=1, duration_s=3.0, warmup_s=1.0),
        _cell("ablation1", "wrong", "run_bulk",
              perceived=wrong_perceived, tdf=10, duration_s=3.0, warmup_s=1.0),
    ]


def _ablation1_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    base = cell_results["base"]
    wrong = cell_results["wrong"]
    table = Table(
        ["configuration", "goodput (Mbps)", "srtt (ms)"],
        title="Forgetting to rescale the physical network breaks emulation",
    )
    table.add_row("baseline (correct)", f"{base.goodput_bps / 1e6:.2f}",
                  f"{(base.srtt or 0) * 1e3:.1f}")
    table.add_row("TDF 10, unscaled net", f"{wrong.goodput_bps / 1e6:.2f}",
                  f"{(wrong.srtt or 0) * 1e3:.1f}")
    figure = FigureResult("ablation1", "Mis-scaled dilation (negative control)",
                          table)
    figure.check(
        "goodput diverges by far more than the equivalence tolerance",
        relative_error(wrong.goodput_bps, base.goodput_bps) > 0.5,
    )
    figure.check(
        "guest-measured RTT diverges from the target RTT",
        relative_error(wrong.srtt or 0, base.srtt or 1) > 0.5,
    )
    return figure


def ablation_misscaled() -> FigureResult:
    """Ablation A1: dilation without rescaling the physical network is wrong.

    Negative control for every equivalence check above: run TDF 10 guests
    over the *unscaled* target network. Guests then perceive a 10x-faster,
    10x-shorter path than the target, and results diverge from baseline.
    """
    return _run_inline("ablation1")


# ============================================================ ablation2


def _ablation2_cells() -> List[CellSpec]:
    return [
        _cell("ablation2", "schedule", "run_dynamic_tdf",
              physical_bandwidth_bps=mbps(10), physical_delay_s=ms(10),
              tdf_schedule=[10, 5], phase_s=3.0, queue_packets=100)
    ]


def _ablation2_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    run = cell_results["schedule"]
    rate1, rate2 = run.phase_rates_bps
    table = Table(
        ["phase", "TDF", "perceived goodput (Mbps)"],
        title="One flow across a runtime TDF change (physical 10 Mbps)",
    )
    table.add_row("0-3 s virtual", 10, f"{rate1 / 1e6:.2f}")
    table.add_row("3-6 s virtual", 5, f"{rate2 / 1e6:.2f}")
    figure = FigureResult("ablation2", "Runtime TDF change", table)
    figure.check("phase 1 perceives ~100 Mbps", abs(rate1 - mbps(100)) / mbps(100) < 0.25)
    figure.check("phase 2 perceives ~50 Mbps", abs(rate2 - mbps(50)) / mbps(50) < 0.25)
    figure.check(
        "virtual clock stayed continuous and monotonic",
        run.final_virtual_s >= 6.0 - 1e-6,
    )
    return figure


def ablation_dynamic_tdf() -> FigureResult:
    """Ablation A2: changing the TDF at runtime re-scales perception live."""
    return _run_inline("ablation2")


# ================================================================= ext1


def _ext1_cells() -> List[CellSpec]:
    perceived = NetworkProfile.from_rtt(mbps(20), ms(40))
    return [
        _cell("ext1", f"tdf{tdf}", "run_bulk_with_cross_traffic",
              perceived=perceived, tdf=tdf, duration_s=6.0)
        for tdf in (1, 10)
    ]


def _ext1_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    base = cell_results["tdf1"]
    dilated = cell_results["tdf10"]
    table = Table(
        ["metric", "TDF 1", "TDF 10", "rel err"],
        title="TCP + 30% CBR cross traffic on a 20 Mbps bottleneck",
    )
    figure = FigureResult("ext1", "Equivalence under cross traffic", table)
    rows = [
        ("TCP goodput (Mbps)", base.tcp_goodput_bps, dilated.tcp_goodput_bps),
        ("CBR delivered (Mbps)", base.cross_rate_bps, dilated.cross_rate_bps),
    ]
    for label, b, d in rows:
        err = relative_error(d, b)
        table.add_row(label, f"{b / 1e6:.3f}", f"{d / 1e6:.3f}",
                      f"{err * 100:.3f}%")
        figure.check(f"{label}: dilated matches baseline",
                     err <= EQUIVALENCE_TOLERANCE)
    figure.check(
        "CBR holds near its configured 30% share",
        relative_error(base.cross_rate_bps, 0.3 * mbps(20)) < 0.15,
    )
    figure.check(
        "TCP claims most of the remainder",
        base.tcp_goodput_bps > 0.5 * mbps(20),
    )
    return figure


def ext1_cross_traffic() -> FigureResult:
    """Extension E1: equivalence holds with competing cross traffic.

    The paper's validation used clean paths; real experiments share links.
    A TCP flow competes with a CBR stream at 30% of the bottleneck; both
    run inside dilated guests, and the dilated run must match baseline.
    """
    return _run_inline("ext1")


# ================================================================= ext2


def _ext2_cells() -> List[CellSpec]:
    perceived = NetworkProfile.from_rtt(mbps(30), ms(20))
    return [
        _cell("ext2", f"tdf{tdf}", "run_consolidated",
              perceived_uplink=perceived, tdf=tdf, guests=3, duration_s=6.0)
        for tdf in (1, 10)
    ]


def _ext2_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    base = cell_results["tdf1"]
    dilated = cell_results["tdf10"]
    table = Table(
        ["guest", "TDF 1 (Mbps)", "TDF 10 (Mbps)"],
        title="3 guests on one machine, shared 30 Mbps uplink",
    )
    figure = FigureResult("ext2", "VM consolidation under dilation", table)
    for index in range(3):
        table.add_row(
            index,
            f"{base.per_guest_goodput_bps[index] / 1e6:.3f}",
            f"{dilated.per_guest_goodput_bps[index] / 1e6:.3f}",
        )
    table.add_row(
        "sum",
        f"{base.aggregate_goodput_bps / 1e6:.3f}",
        f"{dilated.aggregate_goodput_bps / 1e6:.3f}",
    )
    worst = max(
        relative_error(d, b)
        for d, b in zip(dilated.per_guest_goodput_bps,
                        base.per_guest_goodput_bps)
    )
    figure.check(
        f"every guest's share matches baseline (max err {worst:.4f})",
        worst <= EQUIVALENCE_TOLERANCE,
    )
    figure.check(
        "the shared uplink is saturated",
        base.aggregate_goodput_bps > 0.7 * mbps(30),
    )
    figure.check(
        "sharing among co-located guests is fair",
        _jain(base.per_guest_goodput_bps) > 0.8,
    )
    return figure


def ext2_consolidation() -> FigureResult:
    """Extension E2: multiple dilated guests multiplexed on one machine.

    The paper ran several dilated VMs per physical host. Three guest
    senders share one machine uplink; contention for the shared NIC must
    be perceived identically under dilation.
    """
    return _run_inline("ext2")


# ================================================================= ext3


def _ext3_cells() -> List[CellSpec]:
    target = NetworkProfile.from_rtt(mbps(50), ms(20))
    return [
        _cell("ext3", "base", "run_guest_build_job",
              perceived_net=target, tdf=1),
        _cell("ext3", "compensated", "run_guest_build_job",
              perceived_net=target, tdf=10, compensate=True),
        _cell("ext3", "uncompensated", "run_guest_build_job",
              perceived_net=target, tdf=10, compensate=False),
    ]


def _ext3_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    base = cell_results["base"]
    compensated = cell_results["compensated"]
    uncompensated = cell_results["uncompensated"]
    table = Table(
        ["phase", "TDF 1 (s)", "TDF 10 comp. (s)", "TDF 10 full (s)"],
        title="Guest build job: 20 MiB read, 2e9 cycles, 5 MiB write, "
              "10 MiB upload (perceived 50 Mbps / 20 ms)",
    )
    figure = FigureResult("ext3", "Mixed-resource guest program", table)
    phases = [
        ("disk read", "disk_read_s"),
        ("compute", "compute_s"),
        ("disk write", "disk_write_s"),
        ("network upload", "network_s"),
        ("total", "total_s"),
    ]
    for label, attr in phases:
        table.add_row(
            label,
            f"{getattr(base, attr):.4f}",
            f"{getattr(compensated, attr):.4f}",
            f"{getattr(uncompensated, attr):.4f}",
        )
    worst = max(
        relative_error(getattr(compensated, attr), getattr(base, attr))
        for _, attr in phases
    )
    figure.check(
        f"compensated guest matches baseline in every phase "
        f"(max err {worst:.6f})",
        worst <= EQUIVALENCE_TOLERANCE,
    )
    figure.check(
        "uncompensated compute appears ~10x faster",
        relative_error(uncompensated.compute_s * 10, base.compute_s) < 0.05,
    )
    figure.check(
        "uncompensated disk appears ~10x faster",
        relative_error(uncompensated.disk_read_s * 10, base.disk_read_s) < 0.05,
    )
    figure.check(
        "the network phase stays on target either way",
        relative_error(uncompensated.network_s, base.network_s)
        <= EQUIVALENCE_TOLERANCE,
    )
    return figure


def ext3_guest_program() -> FigureResult:
    """Extension E3: a mixed-resource guest program, phase by phase.

    A "build job" (disk read → compile → disk write → TCP upload) inside a
    guest, timed with the guest's own clock. With CPU and disk compensated
    (1/TDF share/throttle) every phase matches the baseline; without
    compensation CPU and disk appear TDF-times faster while the network
    phase — the thing being emulated — stays on target.
    """
    return _run_inline("ext3")


# ================================================================= ext4

_EXT4_TDFS = [5, 10]


def _ext4_specs(impair: Optional[str]) -> List[ImpairmentSpec]:
    if impair is not None:
        return [ImpairmentSpec.parse(impair)]
    return [
        ImpairmentSpec(kind="bernoulli", rate=0.01, seed=42),
        ImpairmentSpec(kind="gilbert", rate=0.01, burst=4.0, seed=42),
    ]


def _ext4_cells(impair: Optional[str] = None) -> List[CellSpec]:
    perceived = NetworkProfile.from_rtt(mbps(20), ms(40))
    cells = []
    for spec in _ext4_specs(impair):
        for tdf in [1] + _EXT4_TDFS:
            cells.append(
                _cell("ext4", f"{spec.kind}-tdf{tdf}", "run_bulk",
                      perceived=perceived, tdf=tdf, duration_s=3.0,
                      warmup_s=1.0, impair=spec)
            )
    return cells


def _ext4_assemble(cell_results: Mapping[str, Any],
                   impair: Optional[str] = None) -> FigureResult:
    specs = _ext4_specs(impair)
    tdfs = _EXT4_TDFS
    table = Table(
        ["model", "TDF", "goodput (Mbps)", "base (Mbps)", "retx", "base retx",
         "drops", "rel err"],
        title="Bulk TCP over an impaired 20 Mbps / 40 ms bottleneck",
    )
    figure = FigureResult("ext4", "Equivalence under impairment", table)
    for spec in specs:
        base = cell_results[f"{spec.kind}-tdf1"]
        base_drops = sum(base.bottleneck_drops.values())
        # Non-dropping stages (reorder, duplicate) leave their mark as
        # retransmits or dupacks rather than bottleneck drops; corruption
        # surfaces at the receiver's checksum instead.
        bite = base_drops + base.checksum_drops + base.retransmits \
            + base.dupacks
        figure.check(
            f"{spec.kind}: the impairment actually bites "
            f"({base_drops} drops, {base.checksum_drops} checksum, "
            f"{base.retransmits} retx, {base.dupacks} dupacks)",
            bite > 0,
        )
        for tdf in tdfs:
            dilated = cell_results[f"{spec.kind}-tdf{tdf}"]
            goodput_err = relative_error(dilated.goodput_bps, base.goodput_bps)
            retx_err = relative_error(dilated.retransmits, base.retransmits)
            table.add_row(
                spec.kind, tdf,
                f"{dilated.goodput_bps / 1e6:.3f}",
                f"{base.goodput_bps / 1e6:.3f}",
                dilated.retransmits, base.retransmits,
                sum(dilated.bottleneck_drops.values()),
                f"{max(goodput_err, retx_err) * 100:.3f}%",
            )
            figure.check(
                f"{spec.kind} TDF {tdf}: goodput within "
                f"{LOSSY_TOLERANCE:.0%} of scaled baseline",
                goodput_err <= LOSSY_TOLERANCE,
            )
            figure.check(
                f"{spec.kind} TDF {tdf}: retransmit count within "
                f"{LOSSY_TOLERANCE:.0%}",
                retx_err <= LOSSY_TOLERANCE,
            )
    figure.notes.append(
        "per-packet impairment decisions are drawn from a seeded RNG in "
        "packet order, never from the clock — the dilated run therefore "
        "sees the same drop pattern and the comparison is typically exact, "
        "not merely within tolerance"
    )
    return figure


def ext4_lossy_equivalence(impair: Optional[str] = None) -> FigureResult:
    """Extension E4: dilation equivalence over a lossy physical path.

    The paper's validation matters most where the network misbehaves. A
    TDF-k guest over an impaired bottleneck must reproduce the scaled
    baseline's goodput and retransmit counts: per-packet impairment
    decisions are seed-deterministic and time-free, so the dilated run
    faces the identical loss pattern. Default matrix: Bernoulli p=1% and
    an equivalent-rate Gilbert–Elliott burst model, TDF ∈ {5, 10}; pass an
    ``--impair`` spec to run a single custom impairment instead.
    """
    return _run_inline("ext4", impair=impair)


# ================================================================= ext5

_EXT5_TDF = 10

#: Swarm-size sweep rows: (leechers, file_bytes, piece_bytes, seed). The
#: file shrinks as the swarm grows so the sweep's largest cell stays
#: tractable while the *population* — the thing this figure scales —
#: keeps growing. Each row is an independent experiment with its own
#: documented seed: swarm event ordering is float-jitter sensitive, and
#: at small populations individual quantiles (p90 of 25 samples) carry
#: enough sampling noise that an unlucky seed reads as a false
#: equivalence failure.
_EXT5_ROWS = [
    (25, 2 << 20, 65536, 4242),
    (100, 1 << 20, 65536, 2026),
    (250, 512 * 1024, 32768, 4242),
]
_EXT5_QUANTILES = (10, 50, 90)


def _ext5_cells(impair: Optional[str] = None) -> List[CellSpec]:
    spec = ImpairmentSpec.parse(impair) if impair is not None else None
    perceived = NetworkProfile.from_rtt(mbps(10), ms(20))
    cells = []
    for leechers, file_bytes, piece_bytes, seed in _EXT5_ROWS:
        for tdf in (1, _EXT5_TDF):
            kwargs: Dict[str, Any] = dict(
                perceived_leaf=perceived, tdf=tdf, leechers=leechers,
                file_bytes=file_bytes, piece_bytes=piece_bytes,
                seed=seed,
            )
            if spec is not None:
                # The impairment axis hits the seed's uplink — the link
                # every original piece copy must cross.
                kwargs["impair"] = spec
            cells.append(
                _cell("ext5", f"n{leechers}-tdf{tdf}", "run_bittorrent",
                      **kwargs)
            )
    return cells


def _ext5_assemble(cell_results: Mapping[str, Any],
                   impair: Optional[str] = None) -> FigureResult:
    from .validate import compare_metrics

    table = Table(
        ["leechers", "file", "TDF", "p10 (s)", "p50 (s)", "p90 (s)",
         "done", "max err"],
        title="Swarm-scale download completion CDF, TDF 1 vs "
              f"{_EXT5_TDF} (virtual axis)",
    )
    figure = FigureResult("ext5", "BitTorrent swarm at scale", table)
    for leechers, file_bytes, _, _seed in _EXT5_ROWS:
        base = cell_results[f"n{leechers}-tdf1"]
        dilated = cell_results[f"n{leechers}-tdf{_EXT5_TDF}"]
        for label, result in (("baseline", base), ("dilated", dilated)):
            figure.check(
                f"n={leechers} {label}: all leechers complete "
                f"({result.completed}/{leechers})",
                result.completed == leechers,
            )
        # Dilation equivalence on the virtual-time axis, via the same
        # machinery user workloads certify themselves with.
        report = compare_metrics(
            baseline={
                f"p{q}": percentile(base.download_times_s, q)
                for q in _EXT5_QUANTILES
            },
            dilated={
                f"p{q}": percentile(dilated.download_times_s, q)
                for q in _EXT5_QUANTILES
            },
            tdf=_EXT5_TDF,
            tolerance=LOSSY_TOLERANCE,
        )
        for row, comparison in ((base, None), (dilated, report.comparisons)):
            quantiles = [
                percentile(row.download_times_s, q) if row.download_times_s
                else float("nan")
                for q in _EXT5_QUANTILES
            ]
            table.add_row(
                leechers,
                f"{file_bytes >> 10} KiB",
                1 if row is base else _EXT5_TDF,
                *(f"{value:.2f}" for value in quantiles),
                f"{row.completed}/{leechers}",
                "-" if comparison is None else
                f"{max(c.error for c in comparison) * 100:.2f}%",
            )
        for comparison in report.comparisons:
            figure.check(
                f"n={leechers}: {comparison.name} completion time within "
                f"{LOSSY_TOLERANCE:.0%} of baseline on the virtual axis "
                f"(err {comparison.error:.4f})",
                comparison.within(LOSSY_TOLERANCE),
            )
        distance = ks_distance(base.download_times_s, dilated.download_times_s)
        figure.check(
            f"n={leechers}: completion CDFs agree (KS {distance:.3f} <= 0.25)",
            distance <= 0.25,
        )
    largest = cell_results[f"n{_EXT5_ROWS[-1][0]}-tdf1"]
    figure.notes.append(
        f"largest cell: {largest.leechers} leechers, "
        f"{largest.tracker_announces} tracker announces (retries included), "
        f"{largest.connections_total} live connections at the end, "
        f"{largest.events_processed} engine events"
    )
    figure.notes.append(
        "like fig9, swarm event ordering is float-jitter sensitive, so "
        "dilated runs match statistically (the paper's testbed claim), "
        "not bit-exactly; the virtual-axis quantile bar is 5%"
    )
    return figure


def ext5_swarm_scale(impair: Optional[str] = None) -> FigureResult:
    """Extension E5: the BitTorrent macro-benchmark at swarm scale.

    Sweeps swarm size (25/100/250 leechers) x TDF {1, 10} on a dilated
    star and compares download-completion-time CDF quantiles on the
    virtual-time axis — the paper's headline swarm experiment grown to
    population sizes where tracker lifecycle bugs and quadratic peer hot
    paths used to hang or dominate. Pass ``--impair`` (e.g. a
    Gilbert–Elliott spec) to run the same sweep with the seed's uplink
    impaired.
    """
    return _run_inline("ext5", impair=impair)


# ================================================================= ext6

_EXT6_TDF = 10
_EXT6_QUANTILES = (10, 50, 90)

#: The trace axis of the TDF x trace sweep: two synthesized LEO handover
#: patterns with different cadence and outage depth. "dense" exercises
#: frequent handovers with large delay steps (the FIFO-clamp regime);
#: "deep" has fewer, longer outages plus capacity dips on every other
#: beam (the bandwidth-step regime).
_EXT6_TRACES = [
    ("dense", ScheduleSpec(kind="leo", period_s=2.0, count=3,
                           outage_s=0.05, amplitude=0.5)),
    ("deep", ScheduleSpec(kind="leo", period_s=3.0, count=2,
                          outage_s=0.12, amplitude=0.25, dip=0.6)),
]
#: Streaming run length, virtual seconds — past both traces' horizons
#: (6.05 s / 6.12 s) so every scheduled entry fires, with slack for the
#: path to settle after the last re-acquisition.
_EXT6_DURATION_S = 8.0


def _ext6_cells() -> List[CellSpec]:
    # A Starlink-ish space segment: 8 Mbps perceived, 25 ms one-way.
    perceived = NetworkProfile(mbps(8), ms(25))
    cells = []
    for name, spec in _EXT6_TRACES:
        for tdf in (1, _EXT6_TDF):
            cells.append(
                _cell("ext6", f"stream-{name}-tdf{tdf}", "run_starlink",
                      perceived=perceived, tdf=tdf,
                      duration_s=_EXT6_DURATION_S, schedule=spec)
            )
    # The swarm half: the seed's uplink — the link every original piece
    # copy crosses — rides the dense trace. One small swarm keeps the
    # macro-benchmark honest without dominating the sweep; 8 leechers
    # give the KS statistic 1/8 granularity (swarm ordering is
    # float-jitter sensitive, so dilated runs match statistically).
    swarm = NetworkProfile.from_rtt(mbps(10), ms(20))
    for tdf in (1, _EXT6_TDF):
        cells.append(
            _cell("ext6", f"swarm-tdf{tdf}", "run_bittorrent",
                  perceived_leaf=swarm, tdf=tdf, leechers=8,
                  file_bytes=1 << 20, piece_bytes=65536, seed=4242,
                  schedule=_EXT6_TRACES[0][1])
        )
    return cells


def _ext6_assemble(cell_results: Mapping[str, Any]) -> FigureResult:
    from .validate import compare_metrics

    table = Table(
        ["workload", "trace", "TDF", "p10 (ms)", "p50 (ms)", "p90 (ms)",
         "playable", "stall", "changes", "outage drops", "max err"],
        title="Streaming + swarm over a scheduled (LEO handover) path, "
              f"TDF 1 vs {_EXT6_TDF} (virtual axis)",
    )
    figure = FigureResult(
        "ext6", "Dilation equivalence on a time-varying topology", table
    )
    for name, _spec in _EXT6_TRACES:
        base = cell_results[f"stream-{name}-tdf1"]
        dilated = cell_results[f"stream-{name}-tdf{_EXT6_TDF}"]
        # The schedule must actually bite, identically at both TDFs:
        # entries applied (handovers fire twice per count: down then up)
        # and traffic dark-dropped in the outage windows. Counts are not
        # hard-coded against the figure's own traces so ``--schedule``
        # overrides replay cleanly.
        figure.check(
            f"stream/{name}: schedule applied, same entries at both TDFs "
            f"({base.schedule_changes} == {dilated.schedule_changes} > 0)",
            base.schedule_changes == dilated.schedule_changes > 0,
        )
        for label, result in (("baseline", base), ("dilated", dilated)):
            figure.check(
                f"stream/{name} {label}: handover outages drop traffic "
                f"({result.outage_drops} drops)",
                result.outage_drops > 0,
            )
        # The headline gate: frame-delay CDF quantiles on the virtual
        # axis, via the same machinery user workloads certify with.
        report = compare_metrics(
            baseline={
                f"p{q}": percentile(base.frame_delays_s, q)
                for q in _EXT6_QUANTILES
            },
            dilated={
                f"p{q}": percentile(dilated.frame_delays_s, q)
                for q in _EXT6_QUANTILES
            },
            tdf=_EXT6_TDF,
            tolerance=LOSSY_TOLERANCE,
        )
        for row, comparison in ((base, None), (dilated, report.comparisons)):
            quantiles = [
                percentile(row.frame_delays_s, q) if row.frame_delays_s
                else float("nan")
                for q in _EXT6_QUANTILES
            ]
            table.add_row(
                "stream",
                name,
                1 if row is base else _EXT6_TDF,
                *(f"{value * 1e3:.2f}" for value in quantiles),
                f"{row.playable_fraction:.3f}",
                f"{row.stall_fraction:.3f}",
                row.schedule_changes,
                row.outage_drops,
                "-" if comparison is None else
                f"{max(c.error for c in comparison) * 100:.2f}%",
            )
        for comparison in report.comparisons:
            figure.check(
                f"stream/{name}: {comparison.name} frame delay within "
                f"{LOSSY_TOLERANCE:.0%} of baseline on the virtual axis "
                f"(err {comparison.error:.4f})",
                comparison.within(LOSSY_TOLERANCE),
            )
        distance = ks_distance(base.frame_delays_s, dilated.frame_delays_s)
        figure.check(
            f"stream/{name}: frame-delay CDFs agree "
            f"(KS {distance:.3f} <= 0.25)",
            distance <= 0.25,
        )
        qoe = compare_metrics(
            baseline={"jitter_s": base.jitter_s,
                      "stall": base.stall_fraction},
            dilated={"jitter_s": dilated.jitter_s,
                     "stall": dilated.stall_fraction},
            tdf=_EXT6_TDF,
            tolerance=LOSSY_TOLERANCE,
        )
        for comparison in qoe.comparisons:
            figure.check(
                f"stream/{name}: QoE {comparison.name} within "
                f"{LOSSY_TOLERANCE:.0%} (err {comparison.error:.4f})",
                comparison.within(LOSSY_TOLERANCE),
            )
    base = cell_results["swarm-tdf1"]
    dilated = cell_results[f"swarm-tdf{_EXT6_TDF}"]
    for label, result in (("baseline", base), ("dilated", dilated)):
        figure.check(
            f"swarm {label}: all leechers complete "
            f"({result.completed}/{result.leechers})",
            result.completed == result.leechers,
        )
    report = compare_metrics(
        baseline={
            f"p{q}": percentile(base.download_times_s, q)
            for q in _EXT6_QUANTILES
        },
        dilated={
            f"p{q}": percentile(dilated.download_times_s, q)
            for q in _EXT6_QUANTILES
        },
        tdf=_EXT6_TDF,
        tolerance=LOSSY_TOLERANCE,
    )
    for row, comparison in ((base, None), (dilated, report.comparisons)):
        quantiles = [
            percentile(row.download_times_s, q) if row.download_times_s
            else float("nan")
            for q in _EXT6_QUANTILES
        ]
        table.add_row(
            "swarm",
            _EXT6_TRACES[0][0],
            1 if row is base else _EXT6_TDF,
            *(f"{value * 1e3:.0f}" for value in quantiles),
            "-",
            "-",
            "-",
            "-",
            "-" if comparison is None else
            f"{max(c.error for c in comparison) * 100:.2f}%",
        )
    for comparison in report.comparisons:
        figure.check(
            f"swarm: {comparison.name} completion time within "
            f"{LOSSY_TOLERANCE:.0%} of baseline on the virtual axis "
            f"(err {comparison.error:.4f})",
            comparison.within(LOSSY_TOLERANCE),
        )
    distance = ks_distance(base.download_times_s, dilated.download_times_s)
    figure.check(
        f"swarm: completion CDFs agree (KS {distance:.3f} <= 0.25)",
        distance <= 0.25,
    )
    figure.notes.append(
        "the schedule is virtual-time indexed: a TDF-10 run replays the "
        "same perceived handover trace with instants and delays x10 and "
        "bandwidths /10, so equivalence holds on the virtual axis even "
        "though the topology never stops moving"
    )
    figure.notes.append(
        "handover outages drop packets dark (no reroute) — playable "
        "fraction and stall absorb the losses the jitter buffer conceals"
    )
    return figure


def ext6_starlink() -> FigureResult:
    """Extension E6: dilation equivalence on a time-varying topology.

    A Starlink-like path whose space segment follows a synthesized LEO
    handover schedule (periodic outages, delay steps, capacity dips —
    all indexed by *virtual* time). Sweeps TDF {1, 10} x two traces for
    a media stream with a competing bulk TCP flow, plus a small
    BitTorrent swarm whose seed uplink rides the same schedule, and
    gates frame-delay / completion-time CDF quantiles and KS distance
    on the virtual axis.
    """
    return _run_inline("ext6")


# ============================================================== registry


FIGURES: Dict[str, Callable[[], FigureResult]] = {
    "table1": table1_resource_scaling,
    "table2": table2_cpu_dilation,
    "fig3": fig3_throughput_vs_rtt,
    "fig4": fig4_throughput_vs_bandwidth,
    "fig5": fig5_interarrival_distribution,
    "fig6": fig6_multiflow_fairness,
    "fig7": fig7_web_throughput,
    "fig8": fig8_web_response_time,
    "fig9": fig9_bittorrent_cdf,
    "fig10": fig10_beyond_gigabit,
    "ablation1": ablation_misscaled,
    "ablation2": ablation_dynamic_tdf,
    "ext1": ext1_cross_traffic,
    "ext2": ext2_consolidation,
    "ext3": ext3_guest_program,
    "ext4": ext4_lossy_equivalence,
    "ext5": ext5_swarm_scale,
    "ext6": ext6_starlink,
}

#: The two-phase (cells, assemble) form of every figure — what the
#: parallel sweep runner consumes. Keys match :data:`FIGURES`.
CELL_MODEL: Dict[str, FigureCells] = {
    "table1": FigureCells(_table1_cells, _table1_assemble),
    "table2": FigureCells(_table2_cells, _table2_assemble),
    "fig3": FigureCells(_fig3_cells, _fig3_assemble),
    "fig4": FigureCells(_fig4_cells, _fig4_assemble),
    "fig5": FigureCells(_fig5_cells, _fig5_assemble),
    "fig6": FigureCells(_fig6_cells, _fig6_assemble),
    "fig7": FigureCells(_fig7_cells, _fig7_assemble),
    "fig8": FigureCells(_fig8_cells, _fig8_assemble),
    "fig9": FigureCells(_fig9_cells, _fig9_assemble),
    "fig10": FigureCells(_fig10_cells, _fig10_assemble),
    "ablation1": FigureCells(_ablation1_cells, _ablation1_assemble),
    "ablation2": FigureCells(_ablation2_cells, _ablation2_assemble),
    "ext1": FigureCells(_ext1_cells, _ext1_assemble),
    "ext2": FigureCells(_ext2_cells, _ext2_assemble),
    "ext3": FigureCells(_ext3_cells, _ext3_assemble),
    "ext4": FigureCells(_ext4_cells, _ext4_assemble, has_impair_axis=True),
    "ext5": FigureCells(_ext5_cells, _ext5_assemble, has_impair_axis=True),
    "ext6": FigureCells(_ext6_cells, _ext6_assemble),
}


def _run_inline(figure_id: str, impair: Optional[str] = None) -> FigureResult:
    """Execute one figure's cells in-process (today's path) and assemble."""
    model = CELL_MODEL[figure_id]
    cells = model.cells(impair)
    results = execute_cells_inline(cells)
    return model.build(
        {spec.key: results[spec.token()] for spec in cells}, impair
    )


def figure_ids() -> List[str]:
    """All known experiment ids, in paper order."""
    return list(FIGURES)


def run_figure(
    figure_id: str,
    profile_engine: bool = False,
    impair: Optional[str] = None,
) -> FigureResult:
    """Run one experiment by id, sequentially in this process.

    With ``profile_engine=True`` every simulator the experiment constructs
    is profiled (events/sec, heap hygiene, per-component histogram) and the
    rendered profile is attached as ``result.engine_profile``. Profiling
    never perturbs results — figures are bit-identical either way. Note
    the in-process memo: cells already executed in this process (by an
    earlier figure or sweep) are not re-simulated, so a profile covers
    only the cells this call actually ran.

    ``impair`` is an :meth:`ImpairmentSpec.parse` string forwarded to
    experiments that take an impairment axis (currently ``ext4``); passing
    it to any other experiment is an error rather than a silent no-op.

    For multi-figure parallel execution, caching, and per-cell timings use
    :func:`repro.harness.runner.run_sweep` (the ``repro-figure --jobs``
    path), which produces byte-identical figures.
    """
    try:
        model = CELL_MODEL[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; known: {', '.join(FIGURES)}"
        ) from None
    if impair is not None and not model.has_impair_axis:
        raise ValueError(
            f"experiment {figure_id!r} has no --impair axis"
        )
    if not profile_engine:
        return _run_inline(figure_id, impair=impair)
    from ..stats.engineprof import profiled

    with profiled() as profiler:
        result = _run_inline(figure_id, impair=impair)
    result.engine_profile = profiler.render()
    return result
