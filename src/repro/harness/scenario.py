"""Declarative experiment construction.

Building a dilated testbed by hand means wiring nodes, links, VMs and
stacks in the right order. :func:`build_scenario` takes a plain-dict
description — the kind of thing a user keeps in a config file — and does
the wiring:

>>> scenario = build_scenario({
...     "links": [
...         {"a": "client", "b": "server",
...          "bandwidth": "10Mbps", "delay": "5ms", "queue": 100},
...     ],
...     "vms": [
...         {"node": "client", "tdf": 10, "cpu_share": 0.5},
...         {"node": "server", "tdf": 10, "cpu_share": 0.5},
...     ],
... })
>>> sock = scenario.tcp("client").connect("server", 80)

Nodes are declared implicitly by appearing in a link. Quantities accept
either numbers (SI base units) or strings (``"10Mbps"``, ``"5ms"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..core.tdf import TdfLike
from ..core.vm import VirtualMachine
from ..core.vmm import Hypervisor
from ..simnet.errors import ConfigurationError
from ..simnet.link import Link
from ..simnet.node import Node
from ..simnet.queues import DropTailQueue
from ..simnet.topology import Network
from ..simnet.units import parse_rate, parse_time
from ..tcp.stack import TcpStack
from ..udp.socket import UdpStack

__all__ = ["Scenario", "build_scenario"]


def _rate(value: Union[str, float, int]) -> float:
    return parse_rate(value) if isinstance(value, str) else float(value)


def _time(value: Union[str, float, int]) -> float:
    return parse_time(value) if isinstance(value, str) else float(value)


@dataclass
class Scenario:
    """A built testbed: network, hypervisor, and lazily created stacks."""

    network: Network
    vmm: Hypervisor
    links: List[Link] = field(default_factory=list)
    vms: Dict[str, VirtualMachine] = field(default_factory=dict)
    _tcp: Dict[str, TcpStack] = field(default_factory=dict)
    _udp: Dict[str, UdpStack] = field(default_factory=dict)

    @property
    def sim(self):
        return self.network.sim

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        return self.network.node(name)

    def vm(self, node_name: str) -> VirtualMachine:
        """The VM hosting ``node_name`` (KeyError for undilated nodes)."""
        return self.vms[node_name]

    def tcp(self, node_name: str) -> TcpStack:
        """The node's TCP stack (created on first use)."""
        if node_name not in self._tcp:
            self._tcp[node_name] = TcpStack(self.node(node_name))
        return self._tcp[node_name]

    def udp(self, node_name: str) -> UdpStack:
        """The node's UDP stack (created on first use)."""
        if node_name not in self._udp:
            self._udp[node_name] = UdpStack(self.node(node_name))
        return self._udp[node_name]

    def run(self, until: Optional[float] = None,
            virtual: Optional[str] = None) -> None:
        """Run the simulation.

        ``until`` is physical seconds; pass ``virtual="<node>"`` to
        interpret it as that node's VM-virtual seconds instead.
        """
        if until is not None and virtual is not None:
            until = self.vm(virtual).clock.to_physical(until)
        self.network.run(until=until)


def build_scenario(spec: Dict[str, Any]) -> Scenario:
    """Construct a :class:`Scenario` from a declarative description.

    Recognised keys:

    ``links`` (required)
        List of ``{"a", "b", "bandwidth", "delay", "queue"?}``; nodes are
        created on first mention. ``queue`` is drop-tail packets
        (default 100).
    ``vms`` (optional)
        List of ``{"node", "tdf"?, "cpu_share"?}`` — boots the node as a
        dilated guest.
    ``host_cycles_per_second`` (optional)
        Physical CPU rate of the (single) machine hosting the VMs.
    """
    if "links" not in spec or not spec["links"]:
        raise ConfigurationError("scenario needs at least one link")
    unknown = set(spec) - {"links", "vms", "host_cycles_per_second"}
    if unknown:
        raise ConfigurationError(f"unknown scenario keys: {sorted(unknown)}")
    network = Network()
    links: List[Link] = []
    for entry in spec["links"]:
        for key in ("a", "b", "bandwidth", "delay"):
            if key not in entry:
                raise ConfigurationError(f"link entry missing {key!r}: {entry}")
        for name in (entry["a"], entry["b"]):
            if name not in network.nodes:
                network.add_node(name)
        queue_packets = int(entry.get("queue", 100))
        links.append(
            network.add_link(
                network.node(entry["a"]),
                network.node(entry["b"]),
                _rate(entry["bandwidth"]),
                _time(entry["delay"]),
                queue_factory=lambda q=queue_packets: DropTailQueue(
                    capacity_packets=q
                ),
            )
        )
    network.finalize()
    vmm = Hypervisor(
        network.sim,
        host_cycles_per_second=float(spec.get("host_cycles_per_second", 1e9)),
    )
    scenario = Scenario(network=network, vmm=vmm, links=links)
    for entry in spec.get("vms", []):
        if "node" not in entry:
            raise ConfigurationError(f"vm entry missing 'node': {entry}")
        node_name = entry["node"]
        vm = vmm.create_vm(
            f"vm-{node_name}",
            tdf=entry.get("tdf", 1),
            cpu_share=float(entry.get("cpu_share", 1.0 / max(1, len(spec["vms"])))),
            node=network.node(node_name),
        )
        scenario.vms[node_name] = vm
    return scenario
