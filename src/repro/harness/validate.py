"""Dilation-safety validation for user workloads.

The library's own figures all follow one recipe: run a workload dilated,
run it against the rescaled baseline, compare. :func:`assert_equivalent`
packages that recipe so downstream users can certify *their* workloads the
same way — the moral equivalent of the paper's validation section as a
reusable assertion.

The user supplies a runner ``fn(perceived_profile, tdf) -> dict`` whose
values are the metrics to compare (numbers, or lists of numbers compared
element-wise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Union

from ..core.dilation import NetworkProfile
from ..core.tdf import TdfLike
from .experiments import relative_error

__all__ = [
    "EquivalenceReport",
    "compare_metrics",
    "check_equivalent",
    "assert_equivalent",
]

Metric = Union[float, int, Sequence[float]]
Runner = Callable[[NetworkProfile, TdfLike], Mapping[str, Metric]]


@dataclass
class MetricComparison:
    """One metric's dilated-vs-baseline outcome."""

    name: str
    baseline: Metric
    dilated: Metric
    error: float

    def within(self, tolerance: float) -> bool:
        return self.error <= tolerance


@dataclass
class EquivalenceReport:
    """The full comparison between a dilated run and its baseline."""

    tdf: TdfLike
    comparisons: List[MetricComparison]
    tolerance: float

    @property
    def passed(self) -> bool:
        return all(c.within(self.tolerance) for c in self.comparisons)

    def failures(self) -> List[MetricComparison]:
        return [c for c in self.comparisons if not c.within(self.tolerance)]

    def summary(self) -> str:
        lines = [f"equivalence at TDF {self.tdf} (tolerance {self.tolerance:g}):"]
        for c in self.comparisons:
            marker = "ok  " if c.within(self.tolerance) else "FAIL"
            lines.append(
                f"  [{marker}] {c.name}: baseline={c.baseline!r} "
                f"dilated={c.dilated!r} err={c.error:.3g}"
            )
        return "\n".join(lines)


def _metric_error(baseline: Metric, dilated: Metric) -> float:
    if isinstance(baseline, (int, float)) and isinstance(dilated, (int, float)):
        return relative_error(float(dilated), float(baseline))
    baseline_list = list(baseline)  # type: ignore[arg-type]
    dilated_list = list(dilated)    # type: ignore[arg-type]
    if len(baseline_list) != len(dilated_list):
        return float("inf")
    if not baseline_list:
        return 0.0
    return max(
        relative_error(float(d), float(b))
        for b, d in zip(baseline_list, dilated_list)
    )


def compare_metrics(
    baseline: Mapping[str, Metric],
    dilated: Mapping[str, Metric],
    tdf: TdfLike,
    tolerance: float = 0.02,
) -> EquivalenceReport:
    """Build an :class:`EquivalenceReport` from already-measured metrics.

    The cell-sweep figures land here: the parallel runner has already
    executed the baseline and dilated cells, so assembly only needs the
    comparison half of :func:`check_equivalent`. Metrics are compared on
    whatever axis the caller measured them — figures pass virtual-time
    quantities, which is the axis dilation equivalence is defined on.
    """
    missing = set(baseline) ^ set(dilated)
    if missing:
        raise ValueError(f"metric sets differ between runs: {sorted(missing)}")
    comparisons = [
        MetricComparison(
            name=name,
            baseline=baseline[name],
            dilated=dilated[name],
            error=_metric_error(baseline[name], dilated[name]),
        )
        for name in sorted(baseline)
    ]
    return EquivalenceReport(tdf=tdf, comparisons=comparisons,
                             tolerance=tolerance)


def check_equivalent(
    runner: Runner,
    perceived: NetworkProfile,
    tdf: TdfLike,
    tolerance: float = 0.02,
) -> EquivalenceReport:
    """Run ``runner`` at TDF 1 and at ``tdf``; compare every metric.

    The runner receives the *perceived* profile both times — it is the
    runner's job (usually via :func:`repro.core.dilation.physical_for`) to
    derive the physical configuration, exactly as the library's own
    experiment runners do.
    """
    return compare_metrics(
        runner(perceived, 1), runner(perceived, tdf), tdf, tolerance
    )


def assert_equivalent(
    runner: Runner,
    perceived: NetworkProfile,
    tdf: TdfLike,
    tolerance: float = 0.02,
) -> EquivalenceReport:
    """Like :func:`check_equivalent` but raises ``AssertionError`` with a
    readable report when any metric exceeds the tolerance."""
    report = check_equivalent(runner, perceived, tdf, tolerance)
    if not report.passed:
        raise AssertionError(report.summary())
    return report
