"""``repro-figure`` — run paper experiments from the command line.

Examples::

    repro-figure --list
    repro-figure fig3
    repro-figure all --jobs 4 --timings
    repro-figure all --jobs 1 --no-cache   # the strictly sequential path

Figures are executed as a deduplicated cell sweep
(:mod:`repro.harness.runner`): by default cells fan out over
``os.cpu_count()`` worker processes and completed cells are cached under
``.repro-cache/``, so an interrupted ``all`` resumes where it stopped.
Output is merged in spec order and is byte-identical whatever ``--jobs``
is. ``--profile-engine`` takes the classic sequential in-process path —
the engine profiler is a per-process singleton, so it cannot span a pool.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .figures import FIGURES, figure_ids, run_figure
from .runner import DEFAULT_CACHE_DIR, run_sweep

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-figure",
        description=(
            "Reproduce the evaluation of 'To Infinity and Beyond: "
            "Time-Warped Network Emulation' (NSDI 2006)."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="*",
        help="experiment ids to run (e.g. fig3 table1), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each experiment's table to DIR/<id>.csv",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for the cell sweep (default: cpu count; "
             "1 = run every cell in-process, no pool)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print a per-cell wall-clock / peak-RSS / engine-event table "
             "after the sweep",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"content-addressed result cache (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--profile-engine",
        action="store_true",
        help="append an event-engine profile (events/sec, heap stats, "
             "per-component histogram) to each experiment's report; "
             "implies the sequential in-process path",
    )
    parser.add_argument(
        "--impair",
        metavar="SPEC",
        help="impairment spec for experiments with an impairment axis "
             "(e.g. ext4): kind[:key=value,...] — "
             "'bernoulli:rate=0.01,seed=7', 'gilbert:rate=0.01,burst=4', "
             "'reorder:rate=0.05,hold=0.002', 'duplicate:rate=0.01', "
             "'corrupt:rate=0.01', 'flap:windows=1.0-1.5/3.0-3.2'",
    )
    parser.add_argument(
        "--trace",
        metavar="SPEC",
        help="attach a flight recorder to every traceable cell: "
             "point[:key=value,...] with point one of bottleneck/reverse/"
             "receiver — e.g. 'bottleneck:kinds=tx+rx+drop,tcp=1,"
             "capacity=65536'; recordings land in --trace-dir as one "
             "JSONL per figure",
    )
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        default="traces",
        help="directory for --trace recordings (default: traces)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=1,
        help="split each shardable cell across N worker processes with the "
             "conservative sharded engine (default: 1 = single-process); "
             "each cell then uses N processes, so budget jobs*shards "
             "against the core count",
    )
    parser.add_argument(
        "--schedule",
        metavar="SPEC",
        help="drive every schedule-capable cell's dynamic link from a "
             "virtual-time schedule: kind[:key=value,...] with kind one "
             "of leo/csv — e.g. 'leo:period=2.0,count=3,outage=0.05,"
             "amp=0.5,dip=0.6' (synthesized handovers) or "
             "'csv:path=traces/starlink.csv' (rows "
             "t_s,delay_s[,bandwidth_bps[,up]])",
    )
    parser.add_argument(
        "--fidelity",
        choices=("packet", "hybrid"),
        default="packet",
        help="engine fidelity for fluid-capable cells: 'packet' (default, "
             "bit-exact golden behaviour) or 'hybrid' (steady-state bulk "
             "flows advance in a coarse-stepped fluid model and fall back "
             "to packet level around loss, startup, tail and impairments; "
             "statistically equivalent, far fewer engine events)",
    )
    return parser


def _run_profiled(requested: List[str], args: argparse.Namespace) -> int:
    """The classic sequential path: one profiled figure at a time."""
    failures = 0
    for figure_id in requested:
        started = time.time()
        try:
            result = run_figure(figure_id, profile_engine=True,
                                impair=args.impair)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        elapsed = time.time() - started
        print(result.render())
        print(f"  ({elapsed:.1f} s wall)")
        if args.csv:
            import os

            os.makedirs(args.csv, exist_ok=True)
            path = result.write_csv(args.csv)
            print(f"  csv: {path}")
        print()
        if not result.all_passed:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) had failing checks", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list or not args.figures:
        print("available experiments:")
        for figure_id in figure_ids():
            doc = (FIGURES[figure_id].__doc__ or "").strip().splitlines()[0]
            print(f"  {figure_id:10s} {doc}")
        return 0
    requested = figure_ids() if args.figures == ["all"] else args.figures
    for figure_id in requested:
        if figure_id not in FIGURES:
            print(f"unknown figure {figure_id!r}; use --list", file=sys.stderr)
            return 2
    if args.profile_engine and args.trace:
        print("--trace cannot be combined with --profile-engine "
              "(the profiled path bypasses the cell sweep)", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"--shards must be >= 1: {args.shards}", file=sys.stderr)
        return 2
    if args.profile_engine and args.shards != 1:
        print("--shards cannot be combined with --profile-engine "
              "(the profiled path bypasses the cell sweep)", file=sys.stderr)
        return 2
    if args.profile_engine and args.fidelity != "packet":
        print("--fidelity cannot be combined with --profile-engine "
              "(the profiled path bypasses the cell sweep)", file=sys.stderr)
        return 2
    if args.profile_engine and args.schedule:
        print("--schedule cannot be combined with --profile-engine "
              "(the profiled path bypasses the cell sweep)", file=sys.stderr)
        return 2
    if args.profile_engine:
        return _run_profiled(requested, args)

    schedule_spec = None
    if args.schedule:
        from ..simnet.errors import ConfigurationError
        from ..simnet.schedule import ScheduleSpec

        try:
            schedule_spec = ScheduleSpec.parse(args.schedule)
        except ConfigurationError as error:
            print(str(error), file=sys.stderr)
            return 2
    trace_spec = None
    if args.trace:
        from ..trace.spec import TraceSpec

        try:
            trace_spec = TraceSpec.parse(args.trace)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
    cache_dir = None if args.no_cache else args.cache_dir
    try:
        outcome = run_sweep(
            requested,
            jobs=args.jobs,
            impair=args.impair,
            cache_dir=cache_dir,
            collect_timings=args.timings,
            trace=trace_spec,
            shards=args.shards,
            fidelity=args.fidelity,
            schedule=schedule_spec,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    failures = 0
    for result in outcome.figures:
        print(result.render())
        if args.csv:
            import os

            os.makedirs(args.csv, exist_ok=True)
            path = result.write_csv(args.csv)
            print(f"  csv: {path}")
        print()
        if not result.all_passed:
            failures += 1
    if trace_spec is not None:
        import os

        from ..trace.events import save_jsonl

        os.makedirs(args.trace_dir, exist_ok=True)
        by_figure: dict = {}
        for figure_id, key, events in outcome.traces:
            by_figure.setdefault(figure_id, []).append((key, events))
        for figure_id, cells in by_figure.items():
            path = os.path.join(args.trace_dir, f"{figure_id}.jsonl")
            merged = [event for _, cell_events in cells
                      for event in cell_events]
            extra = [{"cell": key} for key, cell_events in cells
                     for _ in cell_events]
            save_jsonl(merged, path, extra=extra)
            print(f"  trace: {path} ({len(merged)} events, "
                  f"{len(cells)} cell(s))")
    # Deliberately free of wall time and job count: stdout is byte-identical
    # for any --jobs value (those diagnostics live in the --timings table).
    print(outcome.cache_summary())
    if args.timings:
        print()
        print(outcome.timings_table())
    if failures:
        print(f"{failures} experiment(s) had failing checks", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
