"""Parallel sweep execution with a deterministic, bit-exact merge.

The full evaluation is a sweep over **cells**: one cell is a (figure,
runner, parameters) tuple — a single deterministic simulation such as "the
fig3 bulk-TCP point at RTT 40 ms, TDF 10". Cells are independent by
construction (each runner builds its own ``Network``/``Simulator``, seeds
its own RNGs, and returns a picklable result dataclass), so they can
execute in any order, in any process, and produce bit-identical results.
This module exploits that:

* :class:`CellSpec` — a picklable description of one cell, enumerated per
  figure by :mod:`repro.harness.figures`;
* :func:`run_sweep` — fans unique cells out over a
  ``ProcessPoolExecutor`` (``--jobs N``; ``--jobs 1`` preserves the
  in-process sequential path) and then **merges in spec order**: figures
  are assembled from the result mapping exactly as a sequential run would
  build them, so reports, acceptance checks, and CSV exports are
  byte-identical whatever the parallelism;
* :class:`ResultCache` — a content-addressed on-disk cache
  (``.repro-cache/``), keyed by a hash of the cell spec plus the package
  version, so re-running ``all`` after an interrupt — or after editing
  one figure's parameters — re-executes only the stale cells;
* :class:`CellTiming` — per-cell wall-clock / peak-RSS / engine-event
  accounting behind ``repro-figure --timings``.

Determinism argument, in one paragraph: a cell's result depends only on
its spec (the runner's keyword arguments), never on wall-clock time,
scheduling, or sibling cells — the simulators inside are seeded and
event-driven, and the golden tests pin their outputs across processes.
Dedup/caching are keyed on a canonical serialisation of that spec, so two
equal specs (e.g. fig7's and fig8's shared web sweep) are *the same cell*
and may share one execution. Parallelism therefore changes wall-clock
only; ``tests/harness/test_runner.py`` pins ``--jobs N`` == ``--jobs 1``
bit-exact on representative figures.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import sys
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..parallel.shard import SHARDABLE_RUNNERS, shard_cell_kwargs
from ..trace.spec import TRACEABLE_RUNNERS, TraceSpec
from .report import FigureResult, Table

__all__ = [
    "CellSpec",
    "CellTiming",
    "FigureCells",
    "ResultCache",
    "SweepOutcome",
    "canonical",
    "execute_cell",
    "execute_cells_inline",
    "run_sweep",
    "DEFAULT_CACHE_DIR",
]

#: Bump to invalidate every cached result (cache format / semantics change).
#: 2: BulkFlowResult gained ``trace_events`` (schema-1 pickles lack it).
#: 3: BitTorrentResult gained tracker/connection counters and
#:    ``trace_events``; swarm protocol changes (announce retry, Have
#:    suppression) invalidated old swarm results anyway.
#: 4: BulkFlowResult / BitTorrentResult gained ``shard_stats`` (schema-3
#:    pickles lack the field and would break attribute access on merge).
#: 5: cells gained the ``fidelity`` axis (hybrid fluid/packet engine);
#:    tokens for fidelity-capable runners now cover the new kwarg, and
#:    results carry ``fluid.*`` counters schema-4 pickles lack.
#: 6: BulkFlowResult / BitTorrentResult gained ``realtime_stats``
#:    (schema-5 pickles lack the field and would break attribute access).
CACHE_SCHEMA = 6

#: Default on-disk cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def _package_version() -> str:
    """The repro package version (lazy: the package may still be importing
    this module when it is first loaded)."""
    import repro

    return getattr(repro, "__version__", "0")


# ------------------------------------------------------------------ cell specs


@dataclass
class CellSpec:
    """One independently-executable unit of a figure sweep.

    ``figure_id``/``key`` address the result during merge; ``runner`` names
    an entry point in :data:`repro.harness.experiments.RUNNERS` and
    ``kwargs`` are its keyword arguments. Everything must be picklable
    (plain values or frozen dataclasses like ``NetworkProfile`` /
    ``ImpairmentSpec``) so a cell can cross a process boundary and be
    canonically hashed for the cache.
    """

    figure_id: str
    key: str
    runner: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def token(self) -> str:
        """Content hash identifying this cell's *work* (not its address).

        The figure id and key are deliberately excluded: two figures that
        enumerate an identical (runner, kwargs) pair — fig7 and fig8 share
        their web sweep — map to the same token and share one execution
        and one cache entry. The package version is mixed in so a release
        that changes simulation behaviour never reuses stale results.
        """
        payload = "|".join(
            (str(CACHE_SCHEMA), _package_version(), self.runner,
             canonical(self.kwargs))
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def canonical(value: Any) -> str:
    """A deterministic, content-complete serialisation for hashing.

    Supports the value types cell kwargs are built from: primitives,
    lists/tuples, string-keyed dicts (sorted), and dataclasses (fields in
    declaration order, recursing). Anything else is rejected loudly — an
    unhashable kwarg must not silently poison the cache key.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        return repr(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        inner = ",".join(
            f"{f.name}={canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__qualname__}({inner})"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical(item) for item in value) + "]"
    if isinstance(value, dict):
        items = sorted(value.items())
        return "{" + ",".join(f"{k!r}:{canonical(v)}" for k, v in items) + "}"
    raise TypeError(
        f"cell kwargs must be canonically hashable; got {type(value).__name__}"
    )


@dataclass(frozen=True)
class FigureCells:
    """A figure's two-phase form: enumerate cells, then assemble results.

    ``enumerate()`` returns the figure's :class:`CellSpec` list (taking the
    ``--impair`` string when the figure has that axis); ``assemble()``
    receives ``{cell key: runner result}`` and builds the
    :class:`FigureResult` exactly as the sequential path always did.
    Pure-computation figures (table1) enumerate zero cells.
    """

    enumerate: Callable[..., List[CellSpec]]
    assemble: Callable[..., FigureResult]
    has_impair_axis: bool = False

    def cells(self, impair: Optional[str] = None) -> List[CellSpec]:
        if self.has_impair_axis:
            return self.enumerate(impair)
        return self.enumerate()

    def build(self, results: Mapping[str, Any],
              impair: Optional[str] = None) -> FigureResult:
        if self.has_impair_axis:
            return self.assemble(results, impair)
        return self.assemble(results)


# ------------------------------------------------------------------ execution


def execute_cell(spec: CellSpec,
                 profile: bool = False) -> Tuple[Any, Optional[int]]:
    """Run one cell in this process; returns (result, engine events).

    With ``profile=True`` the cell runs under its own
    :class:`~repro.stats.engineprof.EngineProfiler` and the executed-event
    count is returned (profiling never perturbs results). Do not profile
    from inside an outer :func:`~repro.stats.engineprof.profiled` block —
    the engine has a single default-profiler slot.
    """
    from .experiments import RUNNERS

    try:
        fn = RUNNERS[spec.runner]
    except KeyError:
        raise KeyError(
            f"unknown cell runner {spec.runner!r}; known: {', '.join(RUNNERS)}"
        ) from None
    if not profile:
        return fn(**spec.kwargs), None
    from ..stats.engineprof import profiled

    with profiled() as profiler:
        value = fn(**spec.kwargs)
    events = profiler.events
    # Sharded cells run their engines in worker processes the in-process
    # profiler cannot observe; the workers report their executed-event
    # counts through ``shard_stats``, so fold those in.
    for stats in getattr(value, "shard_stats", None) or []:
        events += stats["events_processed"]
    return value, events


#: Process-local memo for the legacy in-process path (``run_figure``):
#: token -> result. Generalises the old fig7/fig8 web-sweep memo to every
#: cell — ``repro-figure all`` and a benchmark session never run the same
#: deterministic simulation twice in one process.
_MEMO: Dict[str, Any] = {}


def execute_cells_inline(specs: List[CellSpec],
                         memo: bool = True) -> Dict[str, Any]:
    """Run cells sequentially in-process; returns ``{token: result}``.

    This is "today's path": no pool, no pickling, spec order. With
    ``memo=True`` results are remembered for the life of the process
    (sound because cells are deterministic functions of their token).
    """
    out: Dict[str, Any] = {}
    for spec in specs:
        token = spec.token()
        if token in out:
            continue
        if memo and token in _MEMO:
            out[token] = _MEMO[token]
            continue
        value, _ = execute_cell(spec)
        if memo:
            _MEMO[token] = value
        out[token] = value
    return out


def _peak_rss_kib() -> int:
    """This process' peak resident set size, in KiB (0 if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        peak //= 1024
    return int(peak)


def _pool_task(spec: CellSpec, profile: bool) -> Tuple[str, Any, float, int,
                                                       Optional[int]]:
    """Worker-side cell execution (top-level for picklability)."""
    started = time.perf_counter()
    value, events = execute_cell(spec, profile=profile)
    wall = time.perf_counter() - started
    return spec.token(), value, wall, _peak_rss_kib(), events


# --------------------------------------------------------------------- cache


class ResultCache:
    """Content-addressed pickle cache for cell results.

    One file per token under ``directory``; writes are atomic
    (tmp + rename) so an interrupted sweep never leaves a truncated entry
    — a corrupt or unreadable file is simply a miss. The token already
    encodes the cache schema and package version; nothing else is trusted.
    """

    def __init__(self, directory: str = DEFAULT_CACHE_DIR) -> None:
        self.directory = str(directory)
        self.hits = 0
        self.misses = 0

    def _path(self, token: str) -> str:
        return os.path.join(self.directory, token + ".pkl")

    def load(self, token: str) -> Tuple[bool, Any]:
        """(hit?, value). Never raises on a bad entry — it's a miss."""
        try:
            with open(self._path(token), "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def store(self, token: str, value: Any) -> None:
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(token))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# --------------------------------------------------------------------- sweep


@dataclass
class CellTiming:
    """Per-cell accounting surfaced by ``repro-figure --timings``."""

    figure_id: str
    key: str
    token: str
    cached: bool
    wall_s: float = 0.0
    #: Peak RSS of the executing process *at cell completion*, KiB. With a
    #: long-lived pool worker this is a high-water mark, not a per-cell
    #: allocation — it answers "how big did the worker get", which is the
    #: capacity-planning question.
    peak_rss_kib: int = 0
    #: Engine events the cell executed (None when not profiled).
    events: Optional[int] = None
    #: Flight-recorder events the cell captured (None unless traced).
    recorder_events: Optional[int] = None


@dataclass
class SweepOutcome:
    """Everything ``run_sweep`` produced, already merged in spec order."""

    figures: List[FigureResult]
    timings: List[CellTiming]
    cells_total: int
    cells_cached: int
    cells_executed: int
    jobs: int
    wall_s: float
    #: Per traced cell, ``(figure_id, key, trace events)`` in spec order —
    #: the deterministic merge order, independent of ``--jobs``.
    traces: List[Tuple[str, str, List[Any]]] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(figure.all_passed for figure in self.figures)

    def cache_summary(self) -> str:
        """One stable line for logs and the CI cache-hit smoke check."""
        if self.cells_total == 0:
            return "cells: 0 unique"
        share = 100.0 * self.cells_cached / self.cells_total
        return (
            f"cells: {self.cells_total} unique, {self.cells_cached} cached "
            f"({share:.1f}%), {self.cells_executed} executed"
        )

    def timings_table(self) -> str:
        """The per-cell timing table (spec order), rendered."""
        traced = any(t.recorder_events is not None for t in self.timings)
        columns = ["figure", "cell", "wall (s)", "peak RSS (MiB)", "events"]
        if traced:
            columns.append("recorder")
        columns.append("source")
        table = Table(
            columns,
            title=f"Per-cell timings ({self.jobs} job(s), "
                  f"{self.wall_s:.1f} s sweep wall)",
        )
        for timing in self.timings:
            row = [
                timing.figure_id,
                timing.key,
                f"{timing.wall_s:.2f}" if not timing.cached else "-",
                f"{timing.peak_rss_kib / 1024:.1f}" if timing.peak_rss_kib
                else "-",
                f"{timing.events:,}" if timing.events is not None else "-",
            ]
            if traced:
                row.append(
                    f"{timing.recorder_events:,}"
                    if timing.recorder_events is not None else "-"
                )
            row.append("cache" if timing.cached else "run")
            table.add_row(*row)
        executed = [t for t in self.timings if not t.cached]
        events = sum(t.events or 0 for t in executed)
        lines = [table.render()]
        if executed:
            busy = sum(t.wall_s for t in executed)
            lines.append(
                f"  executed {len(executed)} cell(s): {busy:.1f} s of "
                f"simulation across {self.jobs} job(s), "
                f"{events:,} engine events"
            )
        return "\n".join(lines)


def _apply_trace(cells: List[CellSpec],
                 trace: TraceSpec) -> Tuple[List[CellSpec], int]:
    """Thread ``trace`` into every traceable cell; returns (cells, traced).

    A traced cell gets ``kwargs["trace"] = trace`` — a *different* cell
    (different token) from its untraced twin, so traced results never
    alias untraced cache entries. Non-traceable runners pass through.
    """
    out: List[CellSpec] = []
    traced = 0
    for spec in cells:
        if spec.runner in TRACEABLE_RUNNERS:
            kwargs = dict(spec.kwargs)
            kwargs["trace"] = trace
            out.append(CellSpec(spec.figure_id, spec.key, spec.runner,
                                kwargs))
            traced += 1
        else:
            out.append(spec)
    return out, traced


def _apply_shards(cells: List[CellSpec],
                  shards: int) -> Tuple[List[CellSpec], int]:
    """Thread ``shards`` into every shardable cell; returns (cells, count).

    Like :func:`_apply_trace`, a sharded cell is a *different* cell from
    its single-process twin (the token covers kwargs), so sharded results
    never alias single-process cache entries — even though the merged
    values are equivalent, their ``shard_stats`` differ (and sharded
    swarm cells run with the default determinism ``delay_salt``, see
    :func:`repro.parallel.shard.shard_cell_kwargs`). Non-shardable
    runners pass through and run single-process.
    """
    out: List[CellSpec] = []
    sharded = 0
    for spec in cells:
        if spec.runner in SHARDABLE_RUNNERS:
            out.append(CellSpec(
                spec.figure_id, spec.key, spec.runner,
                shard_cell_kwargs(spec.runner, spec.kwargs, shards),
            ))
            sharded += 1
        else:
            out.append(spec)
    return out, sharded


def _apply_fidelity(cells: List[CellSpec],
                    fidelity: str) -> Tuple[List[CellSpec], int]:
    """Thread ``fidelity`` into every fluid-capable cell; returns (cells, count).

    Like :func:`_apply_shards`, a hybrid cell is a *different* cell from
    its packet twin (the token covers kwargs), so hybrid results never
    alias packet cache entries — the values are statistically equivalent,
    not bit-identical, and their ``fluid.*`` counters differ. Runners
    without the fidelity axis pass through and run packet-level.
    """
    from .experiments import FLUID_RUNNERS

    out: List[CellSpec] = []
    rewritten = 0
    for spec in cells:
        if spec.runner in FLUID_RUNNERS:
            kwargs = dict(spec.kwargs)
            kwargs["fidelity"] = fidelity
            out.append(CellSpec(spec.figure_id, spec.key, spec.runner,
                                kwargs))
            rewritten += 1
        else:
            out.append(spec)
    return out, rewritten


def _apply_schedule(cells: List[CellSpec],
                    schedule: Any) -> Tuple[List[CellSpec], int]:
    """Thread ``schedule`` into every schedule-capable cell; returns
    (cells, count).

    Like :func:`_apply_trace`, a scheduled cell is a *different* cell
    from its static twin (the token covers kwargs, and ``ScheduleSpec``
    is a frozen dataclass the canonical hash understands), so scheduled
    results never alias static cache entries. Cells that already carry a
    schedule (ext6 bakes its own trace axis in) are *overridden* — the
    ``--schedule`` axis replays the whole figure against the user's
    trace. Runners without the axis pass through unchanged.
    """
    from .experiments import SCHEDULE_RUNNERS

    out: List[CellSpec] = []
    rewritten = 0
    for spec in cells:
        if spec.runner in SCHEDULE_RUNNERS:
            kwargs = dict(spec.kwargs)
            kwargs["schedule"] = schedule
            out.append(CellSpec(spec.figure_id, spec.key, spec.runner,
                                kwargs))
            rewritten += 1
        else:
            out.append(spec)
    return out, rewritten


def _recorder_events(spec: CellSpec, value: Any) -> Optional[int]:
    """Captured-event count for a traced cell's result (None if untraced)."""
    if spec.kwargs.get("trace") is None:
        return None
    return len(getattr(value, "trace_events", []) or [])


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"--jobs must be >= 1: {jobs}")
    return jobs


def run_sweep(
    figure_ids: List[str],
    jobs: Optional[int] = None,
    impair: Optional[str] = None,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    collect_timings: bool = False,
    trace: Optional[TraceSpec] = None,
    shards: int = 1,
    fidelity: str = "packet",
    schedule: Optional[Any] = None,
) -> SweepOutcome:
    """Execute figures as a deduplicated cell sweep and merge in spec order.

    ``jobs=None`` uses ``os.cpu_count()``; ``jobs=1`` runs every cell
    sequentially in this process (no pool, no pickling). ``cache_dir=None``
    disables the on-disk cache. The returned figures are in ``figure_ids``
    order and byte-identical to a sequential run.

    ``trace`` attaches a flight recorder to every traceable cell (see
    :data:`repro.trace.spec.TRACEABLE_RUNNERS`); the recordings come back
    in ``SweepOutcome.traces`` in spec order — worker completion order
    never leaks into the merge, so the traces are ``--jobs``-independent.
    Requesting a trace for figures with no traceable cells is an error.

    ``shards`` splits each shardable cell (see
    :data:`repro.parallel.shard.SHARDABLE_RUNNERS`) across that many
    worker processes with the conservative sharded engine; non-shardable
    cells run single-process as before. Each cell then occupies ``shards``
    processes, multiplying with ``--jobs`` — budget ``jobs * shards``
    against the machine's cores. Requesting shards for figures with no
    shardable cells is an error.

    ``fidelity="hybrid"`` switches every fluid-capable cell (see
    :data:`repro.harness.experiments.FLUID_RUNNERS`) to the hybrid
    fluid/packet engine; results are statistically equivalent to packet
    level (gated by :func:`repro.harness.validate.compare_metrics`) but
    not bit-identical, and cache under separate tokens. Requesting hybrid
    for figures with no fluid-capable cells is an error.

    ``schedule`` (a :class:`repro.simnet.schedule.ScheduleSpec`) drives
    every schedule-capable cell's dynamic link from the given
    virtual-time trace (see
    :data:`repro.harness.experiments.SCHEDULE_RUNNERS`); cells that
    already carry a schedule are overridden. Requesting a schedule for
    figures with no schedule-capable cells is an error.
    """
    from .figures import CELL_MODEL

    started = time.perf_counter()
    jobs = _resolve_jobs(jobs)
    per_figure: Dict[str, List[CellSpec]] = {}
    unique: Dict[str, CellSpec] = {}
    for figure_id in figure_ids:
        try:
            model = CELL_MODEL[figure_id]
        except KeyError:
            raise KeyError(
                f"unknown figure {figure_id!r}; known: "
                + ", ".join(CELL_MODEL)
            ) from None
        if impair is not None and not model.has_impair_axis:
            raise ValueError(f"experiment {figure_id!r} has no --impair axis")
        cells = model.cells(impair)
        if trace is not None:
            cells, traced = _apply_trace(cells, trace)
            if traced == 0:
                raise ValueError(
                    f"experiment {figure_id!r} has no traceable cells "
                    f"(traceable runners: {', '.join(sorted(TRACEABLE_RUNNERS))})"
                )
        if shards != 1:
            cells, sharded = _apply_shards(cells, shards)
            if sharded == 0:
                raise ValueError(
                    f"experiment {figure_id!r} has no shardable cells "
                    f"(shardable runners: {', '.join(sorted(SHARDABLE_RUNNERS))})"
                )
        if fidelity != "packet":
            cells, fluid_cells = _apply_fidelity(cells, fidelity)
            if fluid_cells == 0:
                from .experiments import FLUID_RUNNERS

                raise ValueError(
                    f"experiment {figure_id!r} has no fluid-capable cells "
                    f"(fluid runners: {', '.join(sorted(FLUID_RUNNERS))})"
                )
        if schedule is not None:
            cells, scheduled = _apply_schedule(cells, schedule)
            if scheduled == 0:
                from .experiments import SCHEDULE_RUNNERS

                raise ValueError(
                    f"experiment {figure_id!r} has no schedule-capable cells "
                    "(schedule runners: "
                    f"{', '.join(sorted(SCHEDULE_RUNNERS))})"
                )
        per_figure[figure_id] = cells
        for spec in cells:
            unique.setdefault(spec.token(), spec)

    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results: Dict[str, Any] = {}
    timing_by_token: Dict[str, CellTiming] = {}
    pending: List[CellSpec] = []
    for token, spec in unique.items():
        if cache is not None:
            hit, value = cache.load(token)
            if hit:
                results[token] = value
                timing_by_token[token] = CellTiming(
                    spec.figure_id, spec.key, token, cached=True,
                    recorder_events=_recorder_events(spec, value),
                )
                continue
        pending.append(spec)

    if pending and jobs > 1:
        # Submission in spec order; completion order is irrelevant because
        # results are merged by token.
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(_pool_task, spec, collect_timings): spec
                for spec in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    spec = futures[future]
                    token, value, wall, rss, events = future.result()
                    results[token] = value
                    timing_by_token[token] = CellTiming(
                        spec.figure_id, spec.key, token, cached=False,
                        wall_s=wall, peak_rss_kib=rss, events=events,
                        recorder_events=_recorder_events(spec, value),
                    )
                    if cache is not None:
                        cache.store(token, value)
    else:
        for spec in pending:
            cell_started = time.perf_counter()
            value, events = execute_cell(spec, profile=collect_timings)
            results[spec.token()] = value
            timing_by_token[spec.token()] = CellTiming(
                spec.figure_id, spec.key, spec.token(), cached=False,
                wall_s=time.perf_counter() - cell_started,
                peak_rss_kib=_peak_rss_kib(), events=events,
                recorder_events=_recorder_events(spec, value),
            )
            if cache is not None:
                cache.store(spec.token(), value)

    figures = [
        CELL_MODEL[figure_id].build(
            {spec.key: results[spec.token()] for spec in per_figure[figure_id]},
            impair,
        )
        for figure_id in figure_ids
    ]
    timings = [timing_by_token[token] for token in unique]
    executed = sum(1 for t in timings if not t.cached)
    traces: List[Tuple[str, str, List[Any]]] = []
    if trace is not None:
        # Deterministic merge, same shape as the figures: per-figure spec
        # order, whatever order the pool completed cells in.
        for figure_id in figure_ids:
            for spec in per_figure[figure_id]:
                if spec.kwargs.get("trace") is not None:
                    value = results[spec.token()]
                    traces.append((
                        figure_id, spec.key,
                        list(getattr(value, "trace_events", []) or []),
                    ))
    return SweepOutcome(
        figures=figures,
        timings=timings,
        cells_total=len(unique),
        cells_cached=len(unique) - executed,
        cells_executed=executed,
        jobs=jobs,
        wall_s=time.perf_counter() - started,
        traces=traces,
    )
