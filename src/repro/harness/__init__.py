"""``repro.harness`` — experiment runners, figure registry, and reporting."""

from .experiments import (
    BitTorrentResult,
    BulkFlowResult,
    CpuResult,
    WebResult,
    default_queue_packets,
    relative_error,
    run_bittorrent,
    run_bulk,
    run_cpu_task,
    run_web,
)
from .figures import FIGURES, figure_ids, run_figure
from .report import Check, FigureResult, Table
from .scenario import Scenario, build_scenario
from .validate import EquivalenceReport, assert_equivalent, check_equivalent

__all__ = [
    "run_bulk",
    "run_web",
    "run_bittorrent",
    "run_cpu_task",
    "BulkFlowResult",
    "WebResult",
    "BitTorrentResult",
    "CpuResult",
    "default_queue_packets",
    "relative_error",
    "FIGURES",
    "figure_ids",
    "run_figure",
    "Table",
    "FigureResult",
    "Check",
    "Scenario",
    "build_scenario",
    "EquivalenceReport",
    "check_equivalent",
    "assert_equivalent",
]
