"""Terminal line charts for figure output.

The paper's evaluation is figures, not tables; `line_chart` renders the
same series as a monospace plot so `repro-figure` output *looks* like the
paper's graphs. Multiple series get distinct glyphs; overlapping points
(the whole point of the equivalence figures!) show the later series'
glyph, which is why the legend lists baseline first.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["line_chart"]

_GLYPHS = "*o+x#@"

Point = Tuple[float, float]


def line_chart(
    series: Dict[str, Sequence[Point]],
    width: int = 60,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart."""
    if not series or all(not points for points in series.values()):
        raise ValueError("line_chart needs at least one non-empty series")
    if width < 10 or height < 4:
        raise ValueError("chart too small to be legible")
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0
    # A little headroom so the top point isn't glued to the frame.
    y_pad = 0.05 * (y_high - y_low)
    y_low -= y_pad
    y_high += y_pad

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, glyph: str) -> None:
        col = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][col] = glyph

    legend = []
    for index, (label, points) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        legend.append(f"{glyph} {label}")
        ordered = sorted(points)
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            # Linear interpolation between consecutive points.
            steps = max(
                2,
                round(abs(x1 - x0) / (x_high - x_low) * (width - 1)) + 1,
            )
            for step in range(steps):
                t = step / (steps - 1)
                plot(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t, glyph)
        for x, y in ordered:
            plot(x, y, glyph)

    lines = []
    if y_label:
        lines.append(y_label)
    top = f"{y_high - y_pad:.6g}"
    bottom = f"{y_low + y_pad:.6g}"
    margin = max(len(top), len(bottom))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * margin + " +" + "-" * width
    lines.append(axis)
    x_axis = (
        " " * margin + "  " + f"{x_low:.6g}"
        + f"{x_high:.6g}".rjust(width - len(f"{x_low:.6g}"))
    )
    lines.append(x_axis)
    if x_label:
        lines.append(" " * margin + "  " + x_label.center(width))
    lines.append(" " * margin + "  " + "   ".join(legend))
    return "\n".join(lines)
