"""Experiment runners: the reusable machinery behind every figure.

Each runner takes a **perceived** (target) network profile and a TDF,
derives the physical configuration via
:func:`repro.core.dilation.physical_for`, boots the guests under a
:class:`~repro.core.vmm.Hypervisor`, drives a workload for a fixed span of
*virtual* time, and reports metrics in virtual units. Running the same
function with ``tdf=1`` produces the scaled baseline the paper validates
against, with identical RNG streams, so results are comparable point by
point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..apps.bittorrent import PeerConfig, TorrentMeta, build_swarm
from ..apps.bittorrent.swarm import salt_fraction
from ..apps.crosstraffic import CbrSource, UdpSink
from ..apps.httpclient import OpenLoopHttpLoad
from ..apps.httpd import WebServer
from ..apps.iperf import IperfClient, IperfServer
from ..apps.streaming import JitterBufferSink, MediaSource
from ..core.dilation import NetworkProfile, physical_for
from ..core.tdf import TdfLike, as_tdf
from ..core.vmm import Hypervisor
from ..parallel.shard import InProcessShard, run_sharded
from ..realtime.driver import RealtimeConfig, RealtimeDriver
from ..simnet.errors import ConfigurationError
from ..simnet.fluid import FluidManager
from ..simnet.impairments import ImpairmentSpec
from ..simnet.queues import DropTailQueue
from ..simnet.schedule import ScheduleSpec
from ..simnet.topology import Network, build_dumbbell, partition_network
from ..simnet.trace import PacketTrace
from ..trace.recorder import FlightRecorder
from ..trace.spec import TraceSpec
from ..tcp.options import TcpOptions
from ..tcp.stack import TcpStack
from ..udp.socket import UdpStack
from ..workloads.specweb import SpecWebMix

__all__ = [
    "BulkFlowResult",
    "WebResult",
    "BitTorrentResult",
    "StreamingResult",
    "CpuResult",
    "CrossTrafficResult",
    "ConsolidationResult",
    "DynamicTdfResult",
    "run_bulk",
    "run_web",
    "run_bittorrent",
    "run_starlink",
    "run_cpu_task",
    "run_bulk_with_cross_traffic",
    "run_consolidated",
    "run_dynamic_tdf",
    "default_queue_packets",
    "relative_error",
    "RUNNERS",
    "FLUID_RUNNERS",
    "SCHEDULE_RUNNERS",
]

#: Frame size used for queue-sizing arithmetic (MSS + headers).
FRAME_BYTES = 1500


def _check_fidelity(fidelity: str) -> None:
    """Reject unknown fidelity modes before any topology is built."""
    if fidelity not in ("packet", "hybrid"):
        raise ConfigurationError(
            f"unknown fidelity {fidelity!r}: expected 'packet' or 'hybrid'"
        )


def _check_realtime(realtime, shards: int, _shard) -> None:
    """Reject realtime pacing on sharded runs before any topology is built.

    Each sharded worker has its own engine, barrier-synchronised with its
    siblings; pacing any one of them against the wall clock would make the
    barrier — not the deadline — decide when events fire.
    """
    if realtime and (shards != 1 or _shard is not None):
        raise ConfigurationError(
            "realtime=True requires shards=1: the wall-clock driver paces "
            "a single engine"
        )


def _build_driver(realtime, sim, recorder) -> Optional[RealtimeDriver]:
    """The run's pacing driver: None for batch, a RealtimeDriver otherwise.

    ``realtime`` may be a bare truthy flag (default config) or a
    :class:`~repro.realtime.driver.RealtimeConfig`. The recorder — when
    the run was given a TraceSpec — rides along so deadline misses land in
    ``trace_events`` beside the packet and timer events.
    """
    if not realtime:
        return None
    config = realtime if isinstance(realtime, RealtimeConfig) else None
    return RealtimeDriver(sim, config=config, recorder=recorder)


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (0 when both are 0)."""
    if reference == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - reference) / abs(reference)


def default_queue_packets(profile: NetworkProfile,
                          frame_bytes: int = FRAME_BYTES) -> int:
    """Queue sized at one bandwidth-delay product (standard provisioning).

    Note the BDP in *packets* is dilation-invariant: physical bandwidth
    shrinks by k while physical RTT grows by k, so the same queue depth is
    correct for a dilated run and its baseline — exactly as the paper kept
    one dummynet queue configuration across TDFs. ``frame_bytes`` must
    match the flow's actual frame size or the buffer is mis-provisioned
    (a 1500-byte sizing under 9000-byte jumbo frames yields a 6x-BDP
    bufferbloat queue whose delay trips spurious RTOs).

    Size from the **perceived** profile, not the physical one: the
    invariance above holds exactly in real arithmetic but not in floats —
    dividing bandwidth by an awkward TDF (e.g. 7) can land the product one
    ulp below an integer packet count, which truncation then turns into a
    whole-packet difference between a dilated run and its baseline (the
    seed-era 60 Mbps / 30 ms / TDF 7 equivalence outlier). The near-integer
    snap below guards direct callers that only have the physical profile.
    """
    bdp_bytes = profile.bandwidth_bps * profile.rtt_s / 8
    packets = bdp_bytes / frame_bytes
    snapped = round(packets)
    if snapped > 0 and abs(packets - snapped) < 1e-9 * snapped:
        packets = snapped
    return int(min(max(packets, 20), 4000))


# ===================================================================== bulk TCP


@dataclass
class BulkFlowResult:
    """Metrics from a bulk-transfer (iperf) run, in virtual units."""

    goodput_bps: float
    per_flow_goodput_bps: List[float]
    delivered_bytes: int
    retransmits: int
    timeouts: int
    srtt: Optional[float]
    segments_sent: int
    interarrivals: List[float] = field(default_factory=list)
    #: Total engine events executed by the run (determinism fingerprint).
    events_processed: int = 0
    #: Cumulative dupack / fast-retransmit accounting over all senders.
    dupacks: int = 0
    fast_retransmits: int = 0
    fast_recoveries: int = 0
    #: Drop taxonomy of the bottleneck's data-direction egress
    #: (reason -> count; empty on a clean run).
    bottleneck_drops: Dict[str, int] = field(default_factory=dict)
    #: Corrupted segments discarded by the receivers' checksum validation.
    checksum_drops: int = 0
    #: Flight-recorder events (empty unless the run was given a TraceSpec).
    trace_events: List = field(default_factory=list)
    #: Per-shard barrier accounting when the run was sharded (empty for
    #: single-process runs; excluded from figure reports).
    shard_stats: List = field(default_factory=list)
    #: Wall-clock pacing accounting when the run was real-time paced
    #: (:meth:`repro.realtime.driver.RealtimeStats.as_dict`; empty for
    #: batch runs).
    realtime_stats: Dict = field(default_factory=dict)


def run_bulk(
    perceived: NetworkProfile,
    tdf: TdfLike,
    duration_s: float,
    flows: int = 1,
    flavor: str = "newreno",
    queue_packets: Optional[int] = None,
    warmup_s: float = 0.0,
    collect_interarrivals: bool = False,
    sack: bool = True,
    mss: int = 1460,
    impair: Optional[ImpairmentSpec] = None,
    schedule: Optional[ScheduleSpec] = None,
    trace: Optional[TraceSpec] = None,
    shards: int = 1,
    fidelity: str = "packet",
    realtime=False,
    _shard=None,
) -> BulkFlowResult:
    """Bulk TCP over a dilated dumbbell; goodput in virtual bits/second.

    ``realtime=True`` paces the run against the wall clock with a
    :class:`repro.realtime.driver.RealtimeDriver`: every event fires at
    its physical timestamp plus a fixed monotonic-clock offset, so the run
    takes ``duration_s x tdf`` wall seconds and the result gains
    ``realtime_stats`` (deadline misses, max slip, busy fraction). Pass a
    :class:`~repro.realtime.driver.RealtimeConfig` instead of ``True`` to
    tune the pacing knobs. Event order — and every metric — is
    bit-identical to the batch run: the driver only decides *when*
    ``sim.run`` is called, never what it executes. Requires ``shards=1``
    (the driver paces a single engine).

    ``fidelity="hybrid"`` installs a :class:`repro.simnet.fluid.FluidManager`
    on the engine: steady-state flows are advanced by the coarse-stepped
    fluid model and fall back to per-packet emulation on any
    discontinuity. Results are statistically equivalent to
    ``fidelity="packet"`` (the default, which is bit-exact with earlier
    releases) at a fraction of the engine events.

    ``duration_s`` and ``warmup_s`` are virtual seconds; the physical run
    is ``tdf`` times longer, exactly as the paper's dilated experiments
    took TDF-times the wall-clock time.

    ``impair`` attaches a seed-deterministic impairment chain to the
    bottleneck's data-direction egress. Per-packet decisions (loss,
    duplication, corruption) depend only on the packet sequence, and the
    spec's time-valued knobs are virtual and scaled by the TDF, so a
    dilated lossy run faces the *same* impairment pattern as its baseline.

    ``trace`` attaches a flight recorder per the spec (point / kinds /
    capacity / tcp / timers) and returns its events in
    ``BulkFlowResult.trace_events``. The recorder owns the first
    receiver's clock, so every event carries a virtual timestamp and TDF
    epoch changes are recorded. Recording spans the whole run including
    warmup (so a dilated trace and its baseline's align from event zero).
    ``trace.point == "receiver"`` cannot be combined with
    ``collect_interarrivals`` (both claim the same interface's recorder).

    ``schedule`` drives the bottleneck link's delay/bandwidth/liveness as
    a piecewise function of *virtual* time
    (:class:`~repro.simnet.schedule.ScheduleSpec`): the same perceived
    trace is replayed under every TDF. Composes with ``shards=2`` — the
    scheduled bottleneck *is* the cut link, and the partition derives its
    lookahead from the schedule's minimum delay — and with
    ``fidelity="hybrid"`` (the link is not fluid-transparent while a
    change is pending).

    ``shards=2`` splits the dumbbell at the bottleneck link — senders and
    left router in one worker process, receivers and right router in the
    other — and runs the two engines under the conservative barrier of
    :mod:`repro.parallel.shard`. The merged result is event-for-event
    identical to ``shards=1``. ``_shard`` is internal: the context a
    sharded worker executes under.
    """
    _check_fidelity(fidelity)
    _check_realtime(realtime, shards, _shard)
    if shards != 1 and _shard is None:
        _check_sharded_trace(trace)
        results, stats = run_sharded(
            "run_bulk",
            dict(
                perceived=perceived, tdf=tdf, duration_s=duration_s,
                flows=flows, flavor=flavor, queue_packets=queue_packets,
                warmup_s=warmup_s,
                collect_interarrivals=collect_interarrivals,
                sack=sack, mss=mss, impair=impair, schedule=schedule,
                trace=trace, fidelity=fidelity,
            ),
            shards,
            _bulk_assignment(flows, shards),
        )
        return _merge_bulk(results, stats)
    factor = as_tdf(tdf)
    physical = physical_for(perceived, factor)
    access_physical = physical_for(
        NetworkProfile(perceived.bandwidth_bps * 10, 1e-5), factor
    )
    # Sized from the perceived profile: the BDP in packets is
    # dilation-invariant, and the perceived numbers are TDF-free so the
    # dilated run and its baseline can never round to different depths.
    queue = (
        queue_packets
        if queue_packets is not None
        else default_queue_packets(perceived, frame_bytes=mss + 40)
    )
    bell = build_dumbbell(
        pairs=flows,
        access_bandwidth_bps=access_physical.bandwidth_bps,
        bottleneck_bandwidth_bps=physical.bandwidth_bps,
        bottleneck_delay_s=physical.delay_s,
        access_delay_s=access_physical.delay_s,
        queue_factory=lambda: DropTailQueue(capacity_packets=queue),
    )
    net = bell.network
    if schedule is not None:
        # Attached before the partition below so the cut lookahead is
        # derived from the schedule's minimum delay. Every worker arms the
        # identical timers at the identical instants, so the per-shard
        # link copies step in lockstep with the single-process run.
        schedule.build(bell.bottleneck, tdf=factor)
    ctx = _shard if _shard is not None else InProcessShard(net)
    if _shard is not None:
        ctx.localize(net, partition_network(net, ctx.shards, ctx.assignment))
    if fidelity == "hybrid":
        # Installed per engine, so a sharded hybrid run gets one manager
        # per worker; flows crossing the shard cut stay packet-level (the
        # steady-state predicate rejects egress-channel paths).
        FluidManager(net.sim)
    bottleneck_egress = bell.bottleneck.interface_from(bell.router_left)
    if impair is not None and ctx.owns(bell.router_left):
        bottleneck_egress.set_impairments(impair.build(net.sim, tdf=factor))
    vmm = Hypervisor(net.sim)
    share = 1.0 / (2 * flows)
    # Size the receive window to never be the bottleneck (the paper's
    # guests relied on window scaling for the same reason).
    receive_buffer = max(1 << 20, int(perceived.bandwidth_delay_product_bits / 2))
    options = TcpOptions(flavor=flavor, sack=sack, mss=mss,
                         receive_buffer=receive_buffer)
    servers: List[IperfServer] = []
    clients: List[IperfClient] = []
    receiver_vm = None
    for index in range(flows):
        vmm.create_vm(f"snd{index}", tdf=factor, cpu_share=share,
                      node=bell.senders[index])
        vm = vmm.create_vm(f"rcv{index}", tdf=factor, cpu_share=share,
                           node=bell.receivers[index])
        if index == 0:
            receiver_vm = vm
        # Stacks and applications only exist on the shard that owns the
        # node (positional None placeholders elsewhere); VMs exist in
        # every worker because their creation schedules nothing.
        servers.append(
            IperfServer(TcpStack(bell.receivers[index]), options=options)
            if ctx.owns(bell.receivers[index])
            else None
        )
        # Never let the transfer finish inside the measurement window: queue
        # twice what the perceived path could move in the whole run.
        transfer_bytes = int(perceived.bandwidth_bps * duration_s / 8 * 2) + (1 << 20)
        clients.append(
            IperfClient(
                TcpStack(bell.senders[index]),
                bell.receivers[index].name,
                total_bytes=transfer_bytes,
                options=options,
                flow_id=f"flow{index}",
            )
            if ctx.owns(bell.senders[index])
            else None
        )
    packet_trace = None
    if collect_interarrivals and ctx.owns(bell.receivers[0]):
        packet_trace = PacketTrace(
            bell.receiver_links[0].b_to_a, kinds=("rx",), flow_id="flow0"
        )
    assert receiver_vm is not None
    recorder = None
    if trace is not None:
        if trace.timers and ctx.shards != 1:
            _check_sharded_trace(trace)
        recorder = FlightRecorder(
            capacity=trace.capacity,
            clock=receiver_vm.clock,
            name=f"bulk:{trace.point}",
            packet_kinds=trace.kinds,
        )
        points = {
            "bottleneck": bottleneck_egress,
            "reverse": bell.bottleneck.interface_from(bell.router_right),
            "receiver": bell.receiver_links[0].b_to_a,
        }
        # Each attachment point belongs to exactly one node; attach only
        # on its owning shard so the merged trace has no duplicates.
        point_nodes = {
            "bottleneck": bell.router_left,
            "reverse": bell.router_right,
            "receiver": bell.receivers[0],
        }
        if ctx.owns(point_nodes[trace.point]):
            recorder.attach_interface(points[trace.point])
        if ctx.owns(bell.receivers[0]):
            recorder.attach_clock(receiver_vm.clock, label="rcv0")
        if trace.timers:
            recorder.attach_engine(net.sim)
    for client in clients:
        if client is not None:
            client.start()
    if recorder is not None and trace.tcp and clients[0] is not None:
        recorder.attach_socket(clients[0].socket)
    driver = _build_driver(realtime, net.sim, recorder)
    advance = ctx.advance if driver is None else driver.run
    warmup_bytes = [0] * flows
    if warmup_s > 0:
        advance(receiver_vm.clock.to_physical(warmup_s))
        warmup_bytes = [
            server.total_bytes if server is not None else 0
            for server in servers
        ]
        if packet_trace is not None:
            packet_trace.clear()
    advance(receiver_vm.clock.to_physical(duration_s))
    span = duration_s - warmup_s
    per_flow = [
        (server.total_bytes - start) * 8 / span if server is not None else 0.0
        for server, start in zip(servers, warmup_bytes)
    ]
    delivered = sum(server.total_bytes - start
                    for server, start in zip(servers, warmup_bytes)
                    if server is not None)
    interarrivals: List[float] = []
    if packet_trace is not None:
        interarrivals = packet_trace.interarrivals(receiver_vm.clock)
    live = [c for c in clients if c is not None]
    first = clients[0].socket if clients[0] is not None else None
    return BulkFlowResult(
        goodput_bps=sum(per_flow),
        per_flow_goodput_bps=per_flow,
        delivered_bytes=delivered,
        retransmits=sum(c.socket.retransmits for c in live if c.socket),
        timeouts=sum(c.socket.timeouts for c in live if c.socket),
        srtt=first.rtt.srtt if first is not None else None,
        segments_sent=sum(c.socket.segments_sent for c in live if c.socket),
        interarrivals=interarrivals,
        events_processed=net.sim.events_processed,
        dupacks=sum(c.socket.dupacks_received for c in live if c.socket),
        fast_retransmits=sum(
            c.socket.fast_retransmits for c in live if c.socket
        ),
        fast_recoveries=sum(
            c.socket.fast_recoveries for c in live if c.socket
        ),
        bottleneck_drops=dict(bottleneck_egress.drops),
        checksum_drops=sum(
            server.stack.checksum_drops
            for server in servers
            if server is not None
        ),
        trace_events=recorder.snapshot() if recorder is not None else [],
        realtime_stats=driver.stats.as_dict() if driver is not None else {},
    )


# ========================================================================= web


@dataclass
class WebResult:
    """Metrics from one web-load run, in virtual units."""

    offered_rps: float
    issued: int
    completed: int
    failed: int
    throughput_rps: float
    mean_latency_s: float
    p95_latency_s: float
    bytes_received: int


def run_web(
    perceived: NetworkProfile,
    tdf: TdfLike,
    rate_rps: float,
    duration_s: float,
    seed: int,
    host_cycles_per_second: float = 1e9,
    scale_cpu: bool = False,
    drain_s: float = 2.0,
) -> WebResult:
    """SPECweb-like open-loop load against the dilated web server.

    ``scale_cpu=False`` (default) compensates the server's CPU share so the
    guest perceives a constant-speed CPU while the network dilates — the
    paper's recipe for scaling resources independently. ``scale_cpu=True``
    lets the CPU dilate along with everything else.
    """
    factor = as_tdf(tdf)
    physical = physical_for(perceived, factor)
    net = Network()
    server_node = net.add_node("www")
    client_node = net.add_node("client")
    net.add_link(
        server_node, client_node, physical.bandwidth_bps, physical.delay_s,
        queue_factory=lambda: DropTailQueue(
            capacity_packets=default_queue_packets(perceived)
        ),
    )
    net.finalize()
    vmm = Hypervisor(net.sim, host_cycles_per_second=host_cycles_per_second)
    server_share = 0.5 if scale_cpu else min(0.5, 0.5 / float(factor.value))
    server_vm = vmm.create_vm("www-vm", tdf=factor, cpu_share=server_share,
                              node=server_node)
    vmm.create_vm("client-vm", tdf=factor, cpu_share=0.25, node=client_node)
    mix = SpecWebMix(rng=random.Random(seed))
    WebServer(TcpStack(server_node), mix, cpu=server_vm.cpu)
    load = OpenLoopHttpLoad(
        TcpStack(client_node),
        "www",
        rate_per_second=rate_rps,
        mix=SpecWebMix(rng=random.Random(seed + 1)),
        rng=random.Random(seed + 2),
        duration_s=duration_s,
    )
    load.start()
    net.run(until=server_vm.clock.to_physical(duration_s + drain_s))
    samples = load.latency.samples
    p95 = 0.0
    if samples:
        from ..stats.cdf import percentile

        p95 = percentile(samples, 95)
    return WebResult(
        offered_rps=rate_rps,
        issued=load.issued,
        completed=load.completed,
        failed=load.failed,
        throughput_rps=load.completed / duration_s,
        mean_latency_s=load.latency.summary.mean,
        p95_latency_s=p95,
        bytes_received=load.bytes_received,
    )


# ================================================================== BitTorrent


@dataclass
class BitTorrentResult:
    """Swarm metrics in virtual units."""

    download_times_s: List[float]
    completed: int
    leechers: int
    seed_uploaded_bytes: int
    total_downloaded_bytes: int
    #: Total engine events executed by the run (determinism fingerprint).
    events_processed: int = 0
    #: Announces the tracker answered (retries included).
    tracker_announces: int = 0
    #: Live peer connections across the swarm when the run ended.
    connections_total: int = 0
    #: Flight-recorder events when a ``trace`` spec was supplied.
    trace_events: List = field(default_factory=list)
    #: Per-shard barrier accounting when the run was sharded (empty for
    #: single-process runs; excluded from figure reports).
    shard_stats: List = field(default_factory=list)
    #: Wall-clock pacing accounting when the run was real-time paced
    #: (empty for batch runs).
    realtime_stats: Dict = field(default_factory=dict)


#: Deterministic per-leaf fraction in [0, 1) for ``delay_salt`` — the
#: same Knuth-hash spread the swarm uses for ``timer_salt``, so both
#: symmetry breakers are one definition (see
#: :func:`repro.apps.bittorrent.swarm.salt_fraction`).
_salt_fraction = salt_fraction


def run_bittorrent(
    perceived_leaf: NetworkProfile,
    tdf: TdfLike,
    leechers: int,
    file_bytes: int,
    seed: int,
    piece_bytes: int = 65536,
    horizon_s: float = 600.0,
    choke_interval_s: float = 5.0,
    impair: Optional[ImpairmentSpec] = None,
    impair_tracker: Optional[ImpairmentSpec] = None,
    schedule: Optional[ScheduleSpec] = None,
    trace: Optional[TraceSpec] = None,
    delay_salt: float = 0.0,
    timer_salt: float = 0.0,
    shards: int = 1,
    fidelity: str = "packet",
    realtime=False,
    _shard=None,
) -> BitTorrentResult:
    """A one-seed swarm on a dilated star; download times in virtual seconds.

    ``impair`` attaches a seed-deterministic impairment chain to the seed's
    uplink egress (the link every original piece copy crosses), so losses
    bite the swarm's primary data source. ``impair_tracker`` impairs both
    directions of the tracker's access link instead — the scenario the
    announce retry exists for.

    ``schedule`` drives the *seed's access link* — the path every original
    piece copy crosses — as a piecewise function of virtual time
    (:class:`~repro.simnet.schedule.ScheduleSpec`): the Starlink-backhaul
    scenario, where the swarm's primary source sits behind a handover
    path. Attached before any partition so a sharded run derives its cut
    lookahead from the schedule's minimum delay.

    ``trace`` attaches a flight recorder: point ``bottleneck`` is the
    seed's uplink egress, ``reverse`` the hub-to-seed direction, and
    ``receiver`` the first leecher's ingress. Timestamps ride the first
    leecher's clock; the ``tcp=1`` flag is ignored (a swarm has no single
    distinguished socket).

    ``delay_salt`` spreads the leaf link propagation delays by a relative
    per-leaf offset (leaf ``i`` gets ``delay * (1 + delay_salt * frac(i))``
    with a fixed hash fraction). The default 0.0 keeps the historical
    perfectly-symmetric star. A tiny salt (``1e-6`` ≈ tens of nanoseconds
    at 10 ms) breaks the float-time phase locking a symmetric swarm falls
    into, where packets from different leaves reach the hub at *bit-equal*
    timestamps; those ties are resolved by unbounded event-creation
    genealogy in a single process, which no bounded cross-shard merge key
    can reproduce (see :mod:`repro.parallel.shard`). ``timer_salt``
    spreads the peers' choke intervals the same way (roster slot ``i``
    gets ``interval * (1 + timer_salt * frac(i))``) — the documented
    fallback for specs that must keep link delays bit-symmetric but can
    tolerate de-phase-locked timers; default 0.0, so goldens never see it.

    ``shards=N`` keeps the hub and tracker in worker 0, stripes the seed
    into worker 1 (its upload traffic is ~15% of swarm events — leaving
    it beside the hub's ~30% starved every other worker), and stripes the
    leechers over all workers, synchronised by the
    conservative barrier of :mod:`repro.parallel.shard` with the star
    links' propagation delay as lookahead. Aggregate results (event
    counts, byte totals, announce counts) merge exactly for any
    configuration; per-packet event order — and hence download times — is
    event-for-event identical to ``shards=1`` when the topology is free of
    cross-leaf timestamp ties, which ``delay_salt`` guarantees. ``_shard``
    is internal.

    ``realtime=True`` (or a :class:`~repro.realtime.driver.RealtimeConfig`)
    paces the run against the wall clock — see :func:`run_bulk`; requires
    ``shards=1``.
    """
    _check_fidelity(fidelity)
    _check_realtime(realtime, shards, _shard)
    if shards != 1 and _shard is None:
        _check_sharded_trace(trace)
        results, stats = run_sharded(
            "run_bittorrent",
            dict(
                perceived_leaf=perceived_leaf, tdf=tdf, leechers=leechers,
                file_bytes=file_bytes, seed=seed, piece_bytes=piece_bytes,
                horizon_s=horizon_s, choke_interval_s=choke_interval_s,
                impair=impair, impair_tracker=impair_tracker,
                schedule=schedule, trace=trace,
                delay_salt=delay_salt, timer_salt=timer_salt,
                fidelity=fidelity,
            ),
            shards,
            _swarm_assignment(leechers, shards),
        )
        return _merge_bittorrent(results, stats)
    factor = as_tdf(tdf)
    physical = physical_for(perceived_leaf, factor)
    net = Network()
    hub = net.add_node("hub")
    leaf_count = leechers + 2  # tracker + seed
    leaves = []
    links = []
    for index in range(leaf_count):
        leaf = net.add_node(f"h{index}")
        link = net.add_link(
            leaf, hub, physical.bandwidth_bps,
            physical.delay_s * (1.0 + delay_salt * _salt_fraction(index)),
            queue_factory=lambda: DropTailQueue(
                capacity_packets=default_queue_packets(perceived_leaf)
            ),
        )
        leaves.append(leaf)
        links.append(link)
    net.finalize()
    if schedule is not None:
        # The seed's access link (links[1], h1<->hub). Before the
        # partition: the cut lookahead must see the schedule's min delay.
        schedule.build(links[1], tdf=factor)
    ctx = _shard if _shard is not None else InProcessShard(net)
    if _shard is not None:
        ctx.localize(net, partition_network(net, ctx.shards, ctx.assignment))
    if fidelity == "hybrid":
        # Swarm traffic is bursty and multiplexed, so most flows stay
        # packet-level most of the time; long piece streams over quiet
        # leaf links still promote (and demote on the first competing
        # transmit). Honest win here is modest — fig3-style bulk flows
        # are where the event reduction lands.
        FluidManager(net.sim)
    tracker_link, seed_link, first_leecher_link = links[0], links[1], links[2]
    # Impairment chains attach to an egress, so they belong to the shard
    # that owns the transmitting node (under the standard assignment the
    # seed's uplink sits in shard 1, the tracker link in shard 0; the
    # ownership gates keep any split honest).
    if impair is not None and ctx.owns(leaves[1]):
        seed_link.interface_from(leaves[1]).set_impairments(
            impair.build(net.sim, tdf=factor)
        )
    if impair_tracker is not None:
        if ctx.owns(hub):
            tracker_link.interface_from(hub).set_impairments(
                impair_tracker.build(net.sim, tdf=factor)
            )
        if ctx.owns(leaves[0]):
            tracker_link.interface_from(leaves[0]).set_impairments(
                impair_tracker.build(net.sim, tdf=factor)
            )
    vmm = Hypervisor(net.sim)
    share = 1.0 / leaf_count
    vms = [
        vmm.create_vm(f"vm{index}", tdf=factor, cpu_share=share, node=leaf)
        for index, leaf in enumerate(leaves)
    ]
    meta = TorrentMeta(name="bench.torrent", total_bytes=file_bytes,
                       piece_size=piece_bytes)
    swarm = build_swarm(
        tracker_node=leaves[0],
        seed_nodes=[leaves[1]],
        leecher_nodes=leaves[2:],
        meta=meta,
        rng=random.Random(seed),
        config=PeerConfig(choke_interval_s=choke_interval_s,
                          stall_timeout_s=4 * choke_interval_s),
        include=ctx.owns if _shard is not None else None,
        timer_salt=timer_salt,
    )
    recorder = None
    if trace is not None:
        if trace.timers and ctx.shards != 1:
            _check_sharded_trace(trace)
        recorder = FlightRecorder(
            capacity=trace.capacity,
            clock=vms[2].clock,
            name=f"swarm:{trace.point}",
            packet_kinds=trace.kinds,
        )
        points = {
            "bottleneck": seed_link.interface_from(leaves[1]),
            "reverse": seed_link.interface_from(hub),
            "receiver": first_leecher_link.interface_from(hub),
        }
        point_nodes = {
            "bottleneck": leaves[1],
            "reverse": hub,
            "receiver": hub,
        }
        if ctx.owns(point_nodes[trace.point]):
            recorder.attach_interface(points[trace.point])
        if ctx.owns(leaves[2]):
            recorder.attach_clock(vms[2].clock, label="leecher0")
        if trace.timers:
            recorder.attach_engine(net.sim)
    swarm.start()
    clock = vms[0].clock
    driver = _build_driver(realtime, net.sim, recorder)
    advance = ctx.advance if driver is None else driver.run
    step = 5.0
    elapsed = 0.0
    # ``all_agree`` makes the completion predicate global, so every shard
    # takes the same number of 5-virtual-second strides (shards=1: the
    # in-process context reduces it to the local predicate unchanged).
    while not ctx.all_agree(swarm.all_complete()) and elapsed < horizon_s:
        elapsed = min(horizon_s, elapsed + step)
        advance(clock.to_physical(elapsed))
    seed_peer = swarm.seeds[0]
    return BitTorrentResult(
        download_times_s=sorted(swarm.download_times()),
        completed=sum(
            1 for p in swarm.leechers if p is not None and p.complete
        ),
        leechers=leechers,
        seed_uploaded_bytes=(
            seed_peer.bytes_uploaded if seed_peer is not None else 0
        ),
        total_downloaded_bytes=sum(
            p.bytes_downloaded for p in swarm.leechers if p is not None
        ),
        events_processed=net.sim.events_processed,
        tracker_announces=(
            swarm.tracker.announces if swarm.tracker is not None else 0
        ),
        connections_total=sum(p.connection_count for p in swarm.peers),
        trace_events=recorder.snapshot() if recorder is not None else [],
        realtime_stats=driver.stats.as_dict() if driver is not None else {},
    )


# ============================================================== starlink/QoE


@dataclass
class StreamingResult:
    """Streaming-over-a-dynamic-path metrics, in virtual units."""

    frames_sent: int
    frames_on_time: int
    frames_late: int
    frames_lost: int
    #: Per-frame one-way delays (virtual seconds, arrival order) — the
    #: distribution the ext6 CDF-quantile/KS gates compare across TDFs.
    frame_delays_s: List[float]
    playable_fraction: float
    #: Mean absolute delay variation between consecutive arrivals.
    jitter_s: float
    #: (late + lost) / sent — the QoE stall proxy.
    stall_fraction: float
    #: Goodput of the competing bulk download (0.0 when ``bulk=False``).
    bulk_goodput_bps: float
    #: Schedule entries actually applied (0 for a static run).
    schedule_changes: int
    #: Egress drops with reason "down" on the scheduled link — packets
    #: that hit a handover outage.
    outage_drops: int
    #: Total engine events executed by the run (determinism fingerprint).
    events_processed: int = 0


def run_starlink(
    perceived: NetworkProfile,
    tdf: TdfLike,
    duration_s: float,
    schedule: Optional[ScheduleSpec] = None,
    frame_interval_s: float = 0.020,
    frame_bytes: int = 480,
    playout_delay_s: float = 0.080,
    bulk: bool = True,
    flavor: str = "newreno",
    queue_packets: Optional[int] = None,
    mss: int = 1460,
) -> StreamingResult:
    """Media streaming (plus a competing bulk flow) over a scheduled path.

    The Starlink-like three-node chain: a user terminal (``ut``) behind a
    space segment whose delay/bandwidth/liveness follow ``schedule``
    (virtual-time indexed — see :class:`~repro.simnet.schedule.ScheduleSpec`),
    a gateway (``gw``), and a server (``srv``) on a fast terrestrial
    link. ``srv`` streams fixed-cadence media frames downlink to a jitter
    buffer on ``ut``; with ``bulk=True`` a TCP download shares the path,
    so handovers are felt through the queue as well as the wire.

    All metrics are virtual-axis: frame delays come from the dilated
    guest clocks, so a TDF-10 run and its baseline are compared on the
    perceived timeline — dilation equivalence under a *time-varying*
    topology is exactly what ext6 gates.
    """
    factor = as_tdf(tdf)
    physical = physical_for(perceived, factor)
    terrestrial = physical_for(
        NetworkProfile(perceived.bandwidth_bps * 10, 2e-3), factor
    )
    queue = (
        queue_packets
        if queue_packets is not None
        else default_queue_packets(perceived, frame_bytes=mss + 40)
    )
    net = Network()
    ut = net.add_node("ut")
    gw = net.add_node("gw")
    srv = net.add_node("srv")
    space = net.add_link(
        ut, gw, physical.bandwidth_bps, physical.delay_s,
        queue_factory=lambda: DropTailQueue(capacity_packets=queue),
    )
    net.add_link(
        gw, srv, terrestrial.bandwidth_bps, terrestrial.delay_s,
        queue_factory=lambda: DropTailQueue(capacity_packets=queue),
    )
    net.finalize()
    link_schedule = (
        schedule.build(space, tdf=factor) if schedule is not None else None
    )
    vmm = Hypervisor(net.sim)
    vm_ut = vmm.create_vm("ut", tdf=factor, cpu_share=1 / 3, node=ut)
    vmm.create_vm("gw", tdf=factor, cpu_share=1 / 3, node=gw)
    vmm.create_vm("srv", tdf=factor, cpu_share=1 / 3, node=srv)
    sink = JitterBufferSink(
        UdpStack(ut), port=5004, playout_delay_s=playout_delay_s,
        keep_samples=True,
    )
    # Stop the frame train half a virtual second before the end of the
    # run so tail frames still in flight are not miscounted as QoE loss.
    total_frames = max(1, int((duration_s - 0.5) / frame_interval_s))
    source = MediaSource(
        UdpStack(srv), "ut", 5004,
        frame_interval_s=frame_interval_s,
        frame_bytes=frame_bytes,
        total_frames=total_frames,
        flow_id="media",
    )
    server = None
    if bulk:
        receive_buffer = max(
            1 << 20, int(perceived.bandwidth_delay_product_bits / 2)
        )
        options = TcpOptions(flavor=flavor, mss=mss,
                             receive_buffer=receive_buffer)
        server = IperfServer(TcpStack(ut), options=options)
        transfer_bytes = (
            int(perceived.bandwidth_bps * duration_s / 8 * 2) + (1 << 20)
        )
        client = IperfClient(
            TcpStack(srv), "ut", total_bytes=transfer_bytes,
            options=options, flow_id="bulk",
        )
        client.start()
    source.start()
    net.run(until=vm_ut.clock.to_physical(duration_s))
    sink.finalize(source.frames_sent)
    outage_drops = (
        space.a_to_b.drops.get("down", 0) + space.b_to_a.drops.get("down", 0)
    )
    return StreamingResult(
        frames_sent=source.frames_sent,
        frames_on_time=sink.on_time,
        frames_late=sink.late,
        frames_lost=sink.lost,
        frame_delays_s=list(sink.delays),
        playable_fraction=sink.playable_fraction(),
        jitter_s=sink.jitter_s(),
        stall_fraction=sink.stall_fraction(source.frames_sent),
        bulk_goodput_bps=(
            server.total_bytes * 8 / duration_s if server is not None else 0.0
        ),
        schedule_changes=(
            link_schedule.applied if link_schedule is not None else 0
        ),
        outage_drops=outage_drops,
        events_processed=net.sim.events_processed,
    )


# ========================================================== cross traffic


@dataclass
class CrossTrafficResult:
    """Metrics from a TCP flow competing with UDP cross traffic."""

    tcp_goodput_bps: float
    cross_rate_bps: float
    tcp_retransmits: int


def run_bulk_with_cross_traffic(
    perceived: NetworkProfile,
    tdf: TdfLike,
    duration_s: float,
    cross_fraction: float = 0.3,
    warmup_s: float = 1.0,
) -> CrossTrafficResult:
    """One TCP flow sharing the bottleneck with a CBR stream.

    ``cross_fraction`` is the CBR source's share of the perceived
    bottleneck; TCP should settle near the remainder. The generator runs
    inside a dilated guest like everything else, so the dilated and
    baseline runs offer identical (virtual-time) background load.
    """
    factor = as_tdf(tdf)
    physical = physical_for(perceived, factor)
    access_physical = physical_for(
        NetworkProfile(perceived.bandwidth_bps * 10, 1e-5), factor
    )
    bell = build_dumbbell(
        pairs=2,
        access_bandwidth_bps=access_physical.bandwidth_bps,
        bottleneck_bandwidth_bps=physical.bandwidth_bps,
        bottleneck_delay_s=physical.delay_s,
        access_delay_s=access_physical.delay_s,
        queue_factory=lambda: DropTailQueue(
            capacity_packets=default_queue_packets(perceived)
        ),
    )
    net = bell.network
    vmm = Hypervisor(net.sim)
    vms = []
    for index in range(2):
        vms.append(vmm.create_vm(f"snd{index}", tdf=factor, cpu_share=0.2,
                                 node=bell.senders[index]))
        vms.append(vmm.create_vm(f"rcv{index}", tdf=factor, cpu_share=0.2,
                                 node=bell.receivers[index]))
    options = TcpOptions()
    server = IperfServer(TcpStack(bell.receivers[0]), options=options)
    transfer = int(perceived.bandwidth_bps * duration_s / 8 * 2) + (1 << 20)
    client = IperfClient(
        TcpStack(bell.senders[0]), bell.receivers[0].name,
        total_bytes=transfer, options=options,
    )
    sink = UdpSink(UdpStack(bell.receivers[1]), 9000)
    cross = CbrSource(
        UdpStack(bell.senders[1]), bell.receivers[1].name, 9000,
        rate_bps=perceived.bandwidth_bps * cross_fraction,  # virtual rate
        packet_bytes=1000,
    )
    client.start()
    cross.start()
    receiver_vm = vms[1]
    net.run(until=receiver_vm.clock.to_physical(warmup_s))
    tcp_at_warmup = server.total_bytes
    cross_at_warmup = sink.bytes_received
    net.run(until=receiver_vm.clock.to_physical(duration_s))
    span = duration_s - warmup_s
    return CrossTrafficResult(
        tcp_goodput_bps=(server.total_bytes - tcp_at_warmup) * 8 / span,
        cross_rate_bps=(sink.bytes_received - cross_at_warmup) * 8 / span,
        tcp_retransmits=client.socket.retransmits if client.socket else 0,
    )


# ========================================================== VM consolidation


@dataclass
class ConsolidationResult:
    """Metrics from several dilated guests multiplexed on one machine."""

    per_guest_goodput_bps: List[float]
    aggregate_goodput_bps: float


def run_consolidated(
    perceived_uplink: NetworkProfile,
    tdf: TdfLike,
    guests: int,
    duration_s: float,
    warmup_s: float = 1.0,
) -> ConsolidationResult:
    """Several dilated guests on one physical machine, sharing its uplink.

    The paper multiplexed multiple dilated VMs per physical host; the key
    property is that contention for the machine's shared NIC is perceived
    consistently. Topology: ``guests`` sender VMs bridge through a machine
    node whose single uplink (the perceived profile, rescaled) carries all
    their traffic to distinct receivers.
    """
    factor = as_tdf(tdf)
    physical = physical_for(perceived_uplink, factor)
    fast = physical_for(
        NetworkProfile(perceived_uplink.bandwidth_bps * 10, 1e-5), factor
    )
    net = Network()
    machine = net.add_node("machine")
    switch = net.add_node("switch")
    net.add_link(
        machine, switch, physical.bandwidth_bps, physical.delay_s,
        queue_factory=lambda: DropTailQueue(
            capacity_packets=default_queue_packets(perceived_uplink)
        ),
    )
    vmm = Hypervisor(net.sim)
    share = 1.0 / (guests + 1)
    servers: List[IperfServer] = []
    transfer = int(perceived_uplink.bandwidth_bps * duration_s / 8 * 2) + (1 << 20)
    guest_nodes = []
    receiver_nodes = []
    for index in range(guests):
        guest = net.add_node(f"guest{index}")
        receiver = net.add_node(f"sink{index}")
        # Virtual NIC to the machine's bridge: fast, negligible delay.
        net.add_link(guest, machine, fast.bandwidth_bps, fast.delay_s)
        net.add_link(switch, receiver, fast.bandwidth_bps, fast.delay_s)
        guest_nodes.append(guest)
        receiver_nodes.append(receiver)
    net.finalize()
    reference_vm = None
    clients = []
    for index in range(guests):
        vmm.create_vm(f"vm{index}", tdf=factor, cpu_share=share,
                      node=guest_nodes[index])
        vm = vmm.create_vm(f"vm-sink{index}", tdf=factor,
                           cpu_share=share / max(1, guests),
                           node=receiver_nodes[index])
        if index == 0:
            reference_vm = vm
        servers.append(IperfServer(TcpStack(receiver_nodes[index])))
        clients.append(IperfClient(
            TcpStack(guest_nodes[index]), receiver_nodes[index].name,
            total_bytes=transfer,
        ))
    for client in clients:
        client.start()
    assert reference_vm is not None
    net.run(until=reference_vm.clock.to_physical(warmup_s))
    at_warmup = [server.total_bytes for server in servers]
    net.run(until=reference_vm.clock.to_physical(duration_s))
    span = duration_s - warmup_s
    per_guest = [
        (server.total_bytes - start) * 8 / span
        for server, start in zip(servers, at_warmup)
    ]
    return ConsolidationResult(
        per_guest_goodput_bps=per_guest,
        aggregate_goodput_bps=sum(per_guest),
    )


# ============================================================= guest programs


@dataclass
class BuildJobResult:
    """Phase timings of the mixed-resource guest program, virtual seconds."""

    disk_read_s: float
    compute_s: float
    disk_write_s: float
    network_s: float
    total_s: float


def run_guest_build_job(
    perceived_net: NetworkProfile,
    tdf: TdfLike,
    compensate: bool = True,
    host_cycles_per_second: float = 1e9,
    disk_bandwidth: float = 100e6,
    read_bytes: int = 20 << 20,
    compute_cycles: float = 2e9,
    write_bytes: int = 5 << 20,
    upload_bytes: int = 10 << 20,
) -> BuildJobResult:
    """A "build server" job touching every dilated resource in sequence:
    read sources from disk → compile (CPU) → write the artifact → upload
    it over TCP. Timed phase by phase with the guest's own clock.

    ``compensate=True`` throttles CPU and disk by 1/TDF so only the
    network dilates (the paper's independent-scaling recipe); with
    ``compensate=False`` every resource appears TDF-times faster.
    """
    from ..core.disk import VirtualDisk
    from ..core.guest import (
        CloseSock,
        Compute,
        Connect,
        DiskRead,
        DiskWrite,
        Flush,
        GuestKernel,
        Now,
        SendOn,
    )

    factor = as_tdf(tdf)
    physical = physical_for(perceived_net, factor)
    net = Network()
    builder = net.add_node("builder")
    server = net.add_node("artifacts")
    net.add_link(
        builder, server, physical.bandwidth_bps, physical.delay_s,
        queue_factory=lambda: DropTailQueue(
            capacity_packets=default_queue_packets(perceived_net)
        ),
    )
    net.finalize()
    vmm = Hypervisor(net.sim, host_cycles_per_second=host_cycles_per_second)
    scale = 1.0 / float(factor.value) if compensate else 1.0
    vm = vmm.create_vm("builder-vm", tdf=factor,
                       cpu_share=min(0.5, 0.5 * scale), node=builder)
    # The throttle alone compensates: it stretches both positioning and
    # transfer by TDF physically, so the guest perceives them unchanged.
    vm.attach_disk(VirtualDisk(
        net.sim, bandwidth_bytes_per_s=disk_bandwidth,
        positioning_delay_s=0.004,
        throttle=min(1.0, scale),
    ))
    vmm.create_vm("server-vm", tdf=factor, cpu_share=0.25, node=server)
    kernel = GuestKernel(vm)
    kernel.use_tcp(TcpStack(builder))
    server_stack = TcpStack(server)
    server_stack.listen(80, lambda s: None)
    marks: Dict[str, float] = {}

    def job():
        # The whole pipeline is one guest program: disk, CPU and network
        # syscalls all resolve against the VM's dilated resources.
        marks["start"] = yield Now()
        yield DiskRead(read_bytes)
        marks["read_done"] = yield Now()
        yield Compute(compute_cycles)
        marks["compute_done"] = yield Now()
        yield DiskWrite(write_bytes)
        marks["write_done"] = yield Now()
        sock = yield Connect("artifacts", 80)
        yield SendOn(sock, upload_bytes)
        yield Flush(sock)
        yield CloseSock(sock)
        marks["upload_done"] = yield Now()

    process = kernel.spawn(job())
    horizon_virtual = 600.0
    net.run(until=vm.clock.to_physical(horizon_virtual))
    if process.error is not None:
        raise process.error
    if "upload_done" not in marks:
        raise SimulationErrorForBuildJob(marks, {})
    return BuildJobResult(
        disk_read_s=marks["read_done"] - marks["start"],
        compute_s=marks["compute_done"] - marks["read_done"],
        disk_write_s=marks["write_done"] - marks["compute_done"],
        network_s=marks["upload_done"] - marks["write_done"],
        total_s=marks["upload_done"] - marks["start"],
    )


class SimulationErrorForBuildJob(RuntimeError):
    """The build job did not finish within the experiment horizon."""

    def __init__(self, marks, received):
        super().__init__(
            f"build job incomplete: marks={marks}, received={received}"
        )


# ================================================================= dynamic TDF


@dataclass
class DynamicTdfResult:
    """One flow timed across a runtime TDF change, virtual units."""

    #: Perceived goodput during each TDF phase, bits per virtual second.
    phase_rates_bps: List[float]
    #: The TDF in force during each phase (parallel to ``phase_rates_bps``).
    phase_tdfs: List[int]
    #: The guest clock at the end of the run (continuity check).
    final_virtual_s: float


def run_dynamic_tdf(
    physical_bandwidth_bps: float,
    physical_delay_s: float,
    tdf_schedule: List[int],
    phase_s: float = 3.0,
    queue_packets: int = 100,
) -> DynamicTdfResult:
    """One TCP flow across runtime TDF changes (ablation A2).

    Runs ``len(tdf_schedule)`` phases of ``phase_s`` virtual seconds each;
    between phases the hypervisor re-dilates both guests live. The
    physical wire never changes — only the guests' perception of it does.
    """
    from ..core.vmm import Hypervisor

    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    net.add_link(a, b, physical_bandwidth_bps, physical_delay_s,
                 queue_factory=lambda: DropTailQueue(
                     capacity_packets=queue_packets))
    net.finalize()
    vmm = Hypervisor(net.sim)
    vmm.create_vm("vma", tdf=tdf_schedule[0], cpu_share=0.5, node=a)
    vm_b = vmm.create_vm("vmb", tdf=tdf_schedule[0], cpu_share=0.5, node=b)
    server = IperfServer(TcpStack(b))
    IperfClient(TcpStack(a), "b").start()
    rates: List[float] = []
    delivered = 0
    elapsed = 0.0
    for index, tdf in enumerate(tdf_schedule):
        if index > 0:
            vmm.set_tdf("vma", tdf)
            vmm.set_tdf("vmb", tdf)
        elapsed += phase_s
        net.run(until=vm_b.clock.to_physical(elapsed))
        phase_bytes = server.total_bytes - delivered
        delivered = server.total_bytes
        rates.append(phase_bytes * 8 / phase_s)
    return DynamicTdfResult(
        phase_rates_bps=rates,
        phase_tdfs=list(tdf_schedule),
        final_virtual_s=vm_b.clock.now(),
    )


# ========================================================================= CPU


@dataclass
class CpuResult:
    """A fixed-cycle task's timing under a dilation/share combination."""

    virtual_duration_s: float
    physical_duration_s: float
    perceived_speedup: float


def run_cpu_task(
    tdf: TdfLike,
    cpu_share: float,
    cycles: float = 2e9,
    host_cycles_per_second: float = 1e9,
) -> CpuResult:
    """Time one CPU-bound task as the guest sees it (Table 2)."""
    net = Network()
    vmm = Hypervisor(net.sim, host_cycles_per_second=host_cycles_per_second)
    vm = vmm.create_vm("cpu-vm", tdf=tdf, cpu_share=cpu_share)
    done = {}

    def on_complete():
        done["virtual"] = vm.clock.now()
        done["physical"] = net.sim.now

    vm.cpu.run(cycles, on_complete=on_complete)
    net.run()
    nominal = cycles / host_cycles_per_second
    return CpuResult(
        virtual_duration_s=done["virtual"],
        physical_duration_s=done["physical"],
        perceived_speedup=nominal / done["virtual"],
    )


# ================================================================== sharding


def _check_sharded_trace(trace: Optional[TraceSpec]) -> None:
    """Reject trace options that cannot survive a multi-engine run."""
    if trace is not None and trace.timers:
        raise ConfigurationError(
            "trace timers=1 records engine-internal timer events and "
            "cannot be combined with shards > 1: each worker has its own "
            "engine, so the merged timer stream would be meaningless"
        )


def _bulk_assignment(flows: int, shards: int) -> Dict[str, int]:
    """Split the dumbbell at the bottleneck: senders left, receivers right.

    The bottleneck link is the topology's only positive-lookahead cut, so
    a dumbbell supports exactly two shards.
    """
    if shards != 2:
        raise ConfigurationError(
            "run_bulk supports exactly 2 shards (the dumbbell's only "
            f"partitionable cut is the bottleneck link); got {shards}"
        )
    assignment = {"rL": 0, "rR": 1}
    for index in range(flows):
        assignment[f"s{index}"] = 0
        assignment[f"d{index}"] = 1
    return assignment


def _swarm_assignment(leechers: int, shards: int) -> Dict[str, int]:
    """Hub + tracker in shard 0, seed in shard 1, leechers striped.

    The hub forwards every packet in the star (~30% of swarm events) and
    the seed transmits every original piece copy (~15%); parking both in
    shard 0 — the PR 6 layout — left it executing ~65% of all events
    while its siblings idled at the barrier. Striping the seed out and
    giving shard 0 one leecher per cycle against two for every other
    shard lands a 2-way split at ~50/50 measured event share (hub +
    tracker + n/3 leechers vs seed + 2n/3 leechers).
    """
    if shards < 2:
        raise ConfigurationError(
            f"a sharded swarm needs at least 2 shards, got {shards}"
        )
    if leechers < shards - 1:
        raise ConfigurationError(
            f"cannot spread {leechers} leechers over {shards} shards: "
            "every shard above 0 needs at least one leecher"
        )
    assignment = {"hub": 0, "h0": 0, "h1": 1}
    pattern = [0] + [shard for shard in range(1, shards) for _ in (0, 1)]
    for index in range(leechers):
        assignment[f"h{index + 2}"] = pattern[index % len(pattern)]
    return assignment


def _merge_trace_events(results: List) -> List:
    """Interleave per-shard recorder snapshots into one physical timeline.

    Each attachment point records on exactly one shard, so this is a
    k-way merge of disjoint streams; the sort is stable, preserving each
    shard's own recording order for same-instant events.
    """
    events = [event for result in results for event in result.trace_events]
    events.sort(key=lambda event: event.physical_time)
    return events


def _merge_bulk(results: List[BulkFlowResult],
                stats: List[Dict]) -> BulkFlowResult:
    """Combine per-shard bulk results into the single-process equivalent.

    Every field is owned by exactly one shard (a flow's server lives on
    one worker; the rest report the identity element), so all the sums
    below are float- and int-exact — the merged result equals the
    ``shards=1`` result bit for bit.
    """
    flows = len(results[0].per_flow_goodput_bps)
    per_flow = [0.0] * flows
    drops: Dict[str, int] = {}
    interarrivals: List[float] = []
    srtt = None
    for result in results:
        for index, value in enumerate(result.per_flow_goodput_bps):
            per_flow[index] += value
        for reason, count in result.bottleneck_drops.items():
            drops[reason] = drops.get(reason, 0) + count
        interarrivals.extend(result.interarrivals)
        if srtt is None:
            srtt = result.srtt
    return BulkFlowResult(
        goodput_bps=sum(per_flow),
        per_flow_goodput_bps=per_flow,
        delivered_bytes=sum(r.delivered_bytes for r in results),
        retransmits=sum(r.retransmits for r in results),
        timeouts=sum(r.timeouts for r in results),
        srtt=srtt,
        segments_sent=sum(r.segments_sent for r in results),
        interarrivals=interarrivals,
        events_processed=sum(r.events_processed for r in results),
        dupacks=sum(r.dupacks for r in results),
        fast_retransmits=sum(r.fast_retransmits for r in results),
        fast_recoveries=sum(r.fast_recoveries for r in results),
        bottleneck_drops=drops,
        checksum_drops=sum(r.checksum_drops for r in results),
        trace_events=_merge_trace_events(results),
        shard_stats=list(stats),
    )


def _merge_bittorrent(results: List[BitTorrentResult],
                      stats: List[Dict]) -> BitTorrentResult:
    """Combine per-shard swarm results into the single-process equivalent.

    Each peer (and the tracker) exists on exactly one shard; the others
    contribute zeros or empty lists, so sums and the sorted download-time
    concatenation reproduce the ``shards=1`` result exactly.
    """
    return BitTorrentResult(
        download_times_s=sorted(
            t for r in results for t in r.download_times_s
        ),
        completed=sum(r.completed for r in results),
        leechers=results[0].leechers,
        seed_uploaded_bytes=sum(r.seed_uploaded_bytes for r in results),
        total_downloaded_bytes=sum(
            r.total_downloaded_bytes for r in results
        ),
        events_processed=sum(r.events_processed for r in results),
        tracker_announces=sum(r.tracker_announces for r in results),
        connections_total=sum(r.connections_total for r in results),
        trace_events=_merge_trace_events(results),
        shard_stats=list(stats),
    )


# ================================================================== registry

#: Spec-driven entry points for the parallel sweep runner: every runner a
#: :class:`~repro.harness.runner.CellSpec` may name. Each is a pure
#: function of its keyword arguments — it builds its own Network/Simulator,
#: runs to completion, and returns a picklable result dataclass — which is
#: exactly what lets a cell execute in any process, in any order, with
#: bit-identical results.
RUNNERS = {
    "run_bulk": run_bulk,
    "run_web": run_web,
    "run_bittorrent": run_bittorrent,
    "run_starlink": run_starlink,
    "run_cpu_task": run_cpu_task,
    "run_bulk_with_cross_traffic": run_bulk_with_cross_traffic,
    "run_consolidated": run_consolidated,
    "run_guest_build_job": run_guest_build_job,
    "run_dynamic_tdf": run_dynamic_tdf,
}

#: Runners that accept the ``fidelity=`` axis (hybrid fluid/packet
#: engine); the sweep runner's ``--fidelity hybrid`` rewrites only these.
FLUID_RUNNERS = frozenset({"run_bulk", "run_bittorrent"})

#: Runners that accept the ``schedule=`` axis (dynamic-topology link
#: schedules); the sweep runner's ``--schedule`` rewrites only these.
SCHEDULE_RUNNERS = frozenset({"run_bulk", "run_bittorrent", "run_starlink"})
