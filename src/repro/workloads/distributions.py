"""Random processes used by the macro-benchmark workload generators.

All distributions take an injected :class:`random.Random` so experiments
are reproducible and so a dilated run and its baseline can consume the
*identical* random sequence — a prerequisite for the harness's exact
equivalence checks.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from ..simnet.errors import ConfigurationError

__all__ = ["ZipfSampler", "exponential_interarrival", "PoissonProcess"]


class ZipfSampler:
    """Draw indices ``0..n-1`` with probability proportional to ``1/(i+1)^s``.

    Web object popularity is classically Zipf-like (s ≈ 0.8–1.0); SPECweb99
    uses a Zipf distribution over file classes and files within a class.
    Sampling is by inverse transform over the precomputed CDF (O(log n)).
    """

    def __init__(self, n: int, exponent: float = 1.0, rng: random.Random = None) -> None:
        if n < 1:
            raise ConfigurationError(f"ZipfSampler needs n >= 1, got {n}")
        if exponent < 0:
            raise ConfigurationError(f"Zipf exponent must be non-negative: {exponent}")
        self.n = n
        self.exponent = exponent
        self._rng = rng if rng is not None else random.Random(0)
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: List[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0  # guard against float undershoot

    def sample(self) -> int:
        """One draw."""
        u = self._rng.random()
        low, high = 0, self.n - 1
        while low < high:
            mid = (low + high) // 2
            if self._cdf[mid] < u:
                low = mid + 1
            else:
                high = mid
        return low

    def probability(self, index: int) -> float:
        """P(X = index)."""
        if not 0 <= index < self.n:
            raise ConfigurationError(f"index out of range: {index}")
        previous = self._cdf[index - 1] if index > 0 else 0.0
        return self._cdf[index] - previous


def exponential_interarrival(rate_per_second: float, rng: random.Random) -> float:
    """One exponential gap for a Poisson process of the given rate."""
    if rate_per_second <= 0:
        raise ConfigurationError(f"rate must be positive: {rate_per_second}")
    return -math.log(1.0 - rng.random()) / rate_per_second


class PoissonProcess:
    """A stream of exponential interarrival gaps (open-loop load)."""

    def __init__(self, rate_per_second: float, rng: random.Random = None) -> None:
        if rate_per_second <= 0:
            raise ConfigurationError(f"rate must be positive: {rate_per_second}")
        self.rate = rate_per_second
        self._rng = rng if rng is not None else random.Random(0)

    def next_gap(self) -> float:
        """Seconds until the next arrival."""
        return exponential_interarrival(self.rate, self._rng)

    def arrivals_until(self, horizon_s: float) -> List[float]:
        """All arrival times in [0, horizon)."""
        times: List[float] = []
        t = self.next_gap()
        while t < horizon_s:
            times.append(t)
            t += self.next_gap()
        return times
