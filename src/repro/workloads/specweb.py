"""A SPECweb99-like static-content workload.

The paper's web macro-benchmark drove Apache with a SPECweb99-style load.
SPECweb99's static file mix has four classes spanning three orders of
magnitude of file size; class and file-within-class popularity are
Zipf-like. We reproduce that structure:

=======  ==================  ============  ============
class    sizes               class weight  files/class
=======  ==================  ============  ============
0        0.1 KB – 0.9 KB     35 %          9
1        1 KB – 9 KB         50 %          9
2        10 KB – 90 KB       14 %          9
3        100 KB – 900 KB      1 %          9
=======  ==================  ============  ============

(SPECweb99 Table 1; weights 35/50/14/1 are the benchmark's own mix.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..simnet.errors import ConfigurationError
from .distributions import ZipfSampler

__all__ = ["SpecWebFile", "SpecWebMix", "CLASS_WEIGHTS", "FILES_PER_CLASS"]

#: SPECweb99 static class mix.
CLASS_WEIGHTS = (0.35, 0.50, 0.14, 0.01)

#: Files per class (SPECweb99 uses 9, sized i*base for i in 1..9).
FILES_PER_CLASS = 9

_CLASS_BASE_BYTES = (102, 1024, 10240, 102400)  # ~0.1K, 1K, 10K, 100K


@dataclass(frozen=True)
class SpecWebFile:
    """One file in the emulated document tree."""

    file_class: int
    index: int
    size_bytes: int

    @property
    def name(self) -> str:
        return f"/class{self.file_class}/file{self.index}"


class SpecWebMix:
    """Sampler producing SPECweb99-like request targets.

    Class selection follows the fixed SPECweb99 mix; the file within a
    class follows a Zipf distribution, as in the benchmark's access model.
    """

    def __init__(self, rng: random.Random = None, zipf_exponent: float = 1.0) -> None:
        self._rng = rng if rng is not None else random.Random(0)
        self.files: List[List[SpecWebFile]] = []
        for class_index, base in enumerate(_CLASS_BASE_BYTES):
            class_files = [
                SpecWebFile(class_index, i, base * (i + 1))
                for i in range(FILES_PER_CLASS)
            ]
            self.files.append(class_files)
        self._within_class = ZipfSampler(
            FILES_PER_CLASS, exponent=zipf_exponent, rng=self._rng
        )
        cumulative = 0.0
        self._class_cdf: List[float] = []
        for weight in CLASS_WEIGHTS:
            cumulative += weight
            self._class_cdf.append(cumulative)
        self._class_cdf[-1] = 1.0

    def sample(self) -> SpecWebFile:
        """Pick one file per the SPECweb99 access pattern."""
        u = self._rng.random()
        for class_index, edge in enumerate(self._class_cdf):
            if u <= edge:
                break
        else:  # pragma: no cover - CDF ends at 1.0
            class_index = len(self._class_cdf) - 1
        return self.files[class_index][self._within_class.sample()]

    def mean_file_size(self) -> float:
        """Expected response size under the access model, bytes."""
        expectation = 0.0
        for class_index, weight in enumerate(CLASS_WEIGHTS):
            class_mean = sum(
                self._within_class.probability(i) * f.size_bytes
                for i, f in enumerate(self.files[class_index])
            )
            expectation += weight * class_mean
        return expectation

    def file_by_name(self, name: str) -> SpecWebFile:
        """Resolve a request path back to a file (server-side lookup)."""
        try:
            class_part, file_part = name.strip("/").split("/")
            class_index = int(class_part.removeprefix("class"))
            file_index = int(file_part.removeprefix("file"))
            return self.files[class_index][file_index]
        except (ValueError, IndexError):
            raise ConfigurationError(f"no such file: {name!r}") from None
