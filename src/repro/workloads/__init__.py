"""``repro.workloads`` — traffic and content models for macro-benchmarks."""

from .distributions import PoissonProcess, ZipfSampler, exponential_interarrival
from .specweb import CLASS_WEIGHTS, FILES_PER_CLASS, SpecWebFile, SpecWebMix

__all__ = [
    "PoissonProcess",
    "ZipfSampler",
    "exponential_interarrival",
    "SpecWebFile",
    "SpecWebMix",
    "CLASS_WEIGHTS",
    "FILES_PER_CLASS",
]
