"""repro — time-warped network emulation.

A from-scratch reproduction of *"To Infinity and Beyond: Time-Warped
Network Emulation"* (NSDI 2006): time dilation lets a guest whose clock
runs at 1/TDF of physical rate perceive every physical resource as TDF
times faster, so commodity substrates can emulate networks faster than any
link they own.

Layout:

* :mod:`repro.simnet`   — the deterministic "physical testbed";
* :mod:`repro.core`     — time dilation: clocks, VMs, the hypervisor;
* :mod:`repro.tcp`      — the guest TCP stack (SACK, ECN, timestamps);
* :mod:`repro.udp`      — datagram sockets;
* :mod:`repro.apps`     — iperf, ping, web, BitTorrent, cross traffic;
* :mod:`repro.workloads`— SPECweb mix, Zipf, Poisson;
* :mod:`repro.stats`    — meters, CDFs, KS distance;
* :mod:`repro.harness`  — per-figure experiment registry and CLI.

Quick tour::

    from repro import simnet, core
    sim = simnet.Simulator()
    vmm = core.Hypervisor(sim)
    vm = vmm.create_vm("guest0", tdf=10)
    vm.clock.call_in(1.0, fn)  # fires after 10 physical seconds

See ``examples/quickstart.py`` for an end-to-end dilated TCP transfer.
"""

from . import apps, core, harness, simnet, stats, tcp, udp, workloads

__version__ = "1.0.0"

__all__ = [
    "core",
    "simnet",
    "tcp",
    "udp",
    "apps",
    "workloads",
    "stats",
    "harness",
    "__version__",
]
