"""``TraceSpec`` — a picklable recorder configuration for the cell model.

``repro-figure --trace <spec>`` and ``repro-trace capture`` thread one of
these through :class:`~repro.harness.runner.CellSpec` kwargs into the
runner (:func:`~repro.harness.experiments.run_bulk` and
:func:`~repro.harness.experiments.run_bittorrent`), which builds a
:class:`~repro.trace.recorder.FlightRecorder` from it inside the worker
process and returns the captured events in its result dataclass. Like
:class:`~repro.simnet.impairments.ImpairmentSpec`, it is a frozen
dataclass so the runner's canonical cache hashing works unchanged — a
traced cell is a *different* cell from its untraced twin.

Spec grammar (mirrors ``--impair``)::

    point[:key=value,...]

    bottleneck                           # data-direction bottleneck egress
    bottleneck:kinds=tx+rx,capacity=4096
    receiver:tcp=1,timers=1

``point`` is where the packet recorder attaches: ``bottleneck`` (the
data-direction bottleneck egress — the canonical observation point),
``reverse`` (the ACK direction), or ``receiver`` (the first receiver's
ingress link). ``kinds`` is a ``+``-separated subset of
enqueue/tx/rx/drop; ``tcp=1`` additionally instruments the first sender's
socket; ``timers=1`` records every executed engine event (high volume —
the ring bounds it); ``capacity`` sizes the ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["TraceSpec", "TRACEABLE_RUNNERS", "TRACE_POINTS"]

TRACE_POINTS = ("bottleneck", "reverse", "receiver")

#: Runners that accept a ``trace=`` kwarg (checked by the sweep runner so
#: ``--trace`` fails loudly on figures that cannot honour it).
TRACEABLE_RUNNERS = frozenset({"run_bulk", "run_bittorrent"})


@dataclass(frozen=True)
class TraceSpec:
    """Recorder configuration carried inside a cell spec."""

    point: str = "bottleneck"
    kinds: Tuple[str, ...] = ("enqueue", "tx", "rx", "drop")
    capacity: int = 1 << 16
    #: Also instrument the first sender's TCP socket (state/rexmit/cwnd).
    tcp: bool = False
    #: Also record one event per executed engine event.
    timers: bool = False

    def __post_init__(self) -> None:
        if self.point not in TRACE_POINTS:
            raise ValueError(
                f"unknown trace point {self.point!r}; "
                f"choose from {', '.join(TRACE_POINTS)}"
            )
        if self.capacity < 1:
            raise ValueError(f"trace capacity must be positive: {self.capacity}")
        bad = [k for k in self.kinds if k not in ("enqueue", "tx", "rx", "drop")]
        if bad:
            raise ValueError(f"unknown packet kinds: {', '.join(bad)}")

    @classmethod
    def parse(cls, text: str) -> "TraceSpec":
        """Parse the CLI grammar; raises ``ValueError`` with a usable hint."""
        head, _, rest = text.strip().partition(":")
        point = head or "bottleneck"
        kwargs = {}
        if rest:
            for item in rest.split(","):
                if not item:
                    continue
                key, sep, value = item.partition("=")
                if not sep:
                    raise ValueError(
                        f"bad trace option {item!r} (expected key=value)"
                    )
                key = key.strip()
                value = value.strip()
                if key == "kinds":
                    kwargs["kinds"] = tuple(value.split("+"))
                elif key == "capacity":
                    kwargs["capacity"] = int(value)
                elif key in ("tcp", "timers"):
                    kwargs[key] = value not in ("0", "false", "no", "")
                else:
                    raise ValueError(
                        f"unknown trace option {key!r}; "
                        "known: kinds, capacity, tcp, timers"
                    )
        return cls(point=point, **kwargs)

    def canonical_string(self) -> str:
        """Round-trippable one-liner (used in filenames and reports)."""
        parts = [f"kinds={'+'.join(self.kinds)}", f"capacity={self.capacity}"]
        if self.tcp:
            parts.append("tcp=1")
        if self.timers:
            parts.append("timers=1")
        return f"{self.point}:{','.join(parts)}"
