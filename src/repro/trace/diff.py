"""First-divergence diffing between two recordings.

The paper's validation methodology is *dilation equivalence*: a run at TDF
k must be indistinguishable from a baseline whose resources are scaled by
k. End-of-run aggregates (goodput, CDF distances) can tell you *that* two
runs diverged; this module tells you *where* — the first event at which
the dilated recording stops matching the scaled baseline, with the
surrounding events for context.

Alignment: events are grouped by :meth:`TraceEvent.stream_key` — for
packet events that is ``packet/<interface>/<flow>/<kind>``, so the k-th
``tx`` of ``flow0`` at the bottleneck in run A is compared against the
k-th in run B regardless of how unrelated streams interleave. Within a
stream, events are compared positionally on their *content* fields
(sizes, TCP seq/ack/flags/window, drop reason) and on time. Packet and
segment uids are **never** compared — they come from process-global
counters and differ between runs that are otherwise identical.

Time comparison prefers virtual timestamps (that is the axis on which a
dilated run and its scaled baseline should agree); when either side lacks
them it falls back to physical time. The tolerance is absolute seconds —
dilated-vs-scaled float jitter in this codebase is ~1e-9, so the 1e-6
default is slack while still catching any real divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .events import TraceEvent

__all__ = [
    "DEFAULT_TIME_TOLERANCE",
    "Divergence",
    "TraceDiffResult",
    "diff_traces",
    "summarize_events",
]

DEFAULT_TIME_TOLERANCE = 1e-6

#: Content fields compared positionally within a stream (uids excluded on
#: purpose — see module docstring).
_CONTENT_FIELDS = (
    "size_bytes", "reason", "src", "dst", "protocol",
    "src_port", "dst_port", "seq", "ack", "payload_len", "flags", "window",
)


@dataclass(slots=True)
class Divergence:
    """One point where the recordings disagree."""

    stream: str
    #: Position within the stream (0-based event ordinal).
    index: int
    #: 'field', 'time', or 'length' (one stream is a prefix of the other).
    kind: str
    #: Which field diverged ('field'), or 'time' / 'count'.
    detail: str
    a_value: object
    b_value: object
    a_event: Optional[TraceEvent] = None
    b_event: Optional[TraceEvent] = None

    def describe(self) -> str:
        if self.kind == "length":
            return (
                f"{self.stream}: stream lengths differ "
                f"({self.a_value} vs {self.b_value} events)"
            )
        return (
            f"{self.stream}[{self.index}]: {self.detail} differs "
            f"({self.a_value!r} vs {self.b_value!r})"
        )


@dataclass(slots=True)
class TraceDiffResult:
    """All divergences, ordered by the first side's event time."""

    divergences: List[Divergence] = field(default_factory=list)
    streams_compared: int = 0
    events_compared: int = 0
    #: Events surrounding the first divergence, from each recording.
    context_a: List[TraceEvent] = field(default_factory=list)
    context_b: List[TraceEvent] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.divergences

    @property
    def first(self) -> Optional[Divergence]:
        return self.divergences[0] if self.divergences else None

    def render(self, context: int = 3, label_a: str = "A", label_b: str = "B") -> str:
        """Human-readable report, first divergence with surrounding events."""
        lines = [
            f"streams compared : {self.streams_compared}",
            f"events compared  : {self.events_compared}",
            f"divergences      : {len(self.divergences)}",
        ]
        first = self.first
        if first is None:
            lines.append("recordings are equivalent")
            return "\n".join(lines)
        lines.append(f"first divergence : {first.describe()}")
        for label, events in ((label_a, self.context_a), (label_b, self.context_b)):
            if not events:
                continue
            lines.append(f"--- context ({label}) ---")
            for event in events:
                lines.append("  " + _format_event(event))
        if len(self.divergences) > 1:
            lines.append(f"... and {len(self.divergences) - 1} more divergence(s)")
        return "\n".join(lines)


def _format_event(event: TraceEvent) -> str:
    time = event.virtual_time if event.virtual_time is not None \
        else event.physical_time
    extra = ""
    if event.category == "packet":
        extra = f" {event.size_bytes}B"
        if event.seq or event.payload_len:
            extra += f" seq={event.seq} len={event.payload_len} [{event.flags}]"
        if event.reason:
            extra += f" reason={event.reason}"
    elif event.reason:
        extra = f" {event.reason}"
    if event.value:
        extra += f" value={event.value:g}"
    return f"t={time:.9f} {event.category}/{event.kind} @{event.site}{extra}"


def _event_time(event: TraceEvent, use_virtual: bool) -> float:
    if use_virtual and event.virtual_time is not None:
        return event.virtual_time
    return event.physical_time


def _group(events: Sequence[TraceEvent]) -> Dict[str, List[TraceEvent]]:
    streams: Dict[str, List[TraceEvent]] = {}
    for event in events:
        streams.setdefault(event.stream_key(), []).append(event)
    return streams


def diff_traces(
    events_a: Sequence[TraceEvent],
    events_b: Sequence[TraceEvent],
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
    compare_time: bool = True,
    categories: Optional[Sequence[str]] = None,
    context: int = 3,
) -> TraceDiffResult:
    """Align two recordings and report every divergence (first one detailed).

    ``categories`` restricts the comparison (e.g. ``("packet",)`` to
    ignore timer noise); ``compare_time=False`` checks ordering/content
    only. Streams present in only one recording count as a 'length'
    divergence at index 0.
    """
    if categories is not None:
        allowed = frozenset(categories)
        events_a = [e for e in events_a if e.category in allowed]
        events_b = [e for e in events_b if e.category in allowed]
    streams_a = _group(events_a)
    streams_b = _group(events_b)
    # Virtual time only if *both* recordings carry it throughout.
    use_virtual = (
        all(e.virtual_time is not None for e in events_a)
        and all(e.virtual_time is not None for e in events_b)
        and bool(events_a)
    )

    result = TraceDiffResult()
    # Deterministic stream order: first appearance in recording A, then
    # B-only streams in their first-appearance order.
    ordered = list(streams_a)
    ordered += [key for key in streams_b if key not in streams_a]
    result.streams_compared = len(ordered)

    for key in ordered:
        side_a = streams_a.get(key, [])
        side_b = streams_b.get(key, [])
        for index, (ev_a, ev_b) in enumerate(zip(side_a, side_b)):
            result.events_compared += 1
            for name in _CONTENT_FIELDS:
                val_a = getattr(ev_a, name)
                val_b = getattr(ev_b, name)
                if val_a != val_b:
                    result.divergences.append(Divergence(
                        key, index, "field", name, val_a, val_b, ev_a, ev_b
                    ))
                    break
            else:
                if compare_time:
                    t_a = _event_time(ev_a, use_virtual)
                    t_b = _event_time(ev_b, use_virtual)
                    if abs(t_a - t_b) > time_tolerance:
                        axis = "virtual time" if use_virtual else "time"
                        result.divergences.append(Divergence(
                            key, index, "time", axis, t_a, t_b, ev_a, ev_b
                        ))
        if len(side_a) != len(side_b):
            index = min(len(side_a), len(side_b))
            result.divergences.append(Divergence(
                key, index, "length", "count", len(side_a), len(side_b),
                a_event=side_a[index] if index < len(side_a) else None,
                b_event=side_b[index] if index < len(side_b) else None,
            ))

    def _sort_key(div: Divergence) -> Tuple[float, str, int]:
        anchor = div.a_event or div.b_event
        time = _event_time(anchor, use_virtual) if anchor else float("inf")
        return (time, div.stream, div.index)

    result.divergences.sort(key=_sort_key)

    first = result.first
    if first is not None:
        result.context_a = _context_for(
            streams_a.get(first.stream, []), first.index, context
        )
        result.context_b = _context_for(
            streams_b.get(first.stream, []), first.index, context
        )
    return result


def _context_for(
    stream: List[TraceEvent], index: int, context: int
) -> List[TraceEvent]:
    lo = max(0, index - context)
    hi = min(len(stream), index + context + 1)
    return stream[lo:hi]


def summarize_events(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """Aggregate counts for ``repro-trace summarize`` and reports."""
    by_kind: Dict[str, int] = {}
    drops: Dict[str, int] = {}
    flows: Dict[str, int] = {}
    total_bytes = 0
    t_lo = t_hi = None
    for event in events:
        label = f"{event.category}/{event.kind}"
        by_kind[label] = by_kind.get(label, 0) + 1
        if event.category == "packet":
            total_bytes += event.size_bytes
            if event.flow_id:
                flows[event.flow_id] = flows.get(event.flow_id, 0) + 1
            if event.kind == "drop":
                reason = event.reason or "unknown"
                drops[reason] = drops.get(reason, 0) + 1
        time = event.physical_time
        t_lo = time if t_lo is None else min(t_lo, time)
        t_hi = time if t_hi is None else max(t_hi, time)
    return {
        "events": len(events),
        "by_kind": dict(sorted(by_kind.items())),
        "drops_by_reason": dict(sorted(drops.items())),
        "flows": dict(sorted(flows.items())),
        "packet_bytes": total_bytes,
        "span_physical_s": (t_hi - t_lo) if events else 0.0,
    }
