"""Flight recorder: unified trace subsystem.

One recorder object (:class:`FlightRecorder`) observes every layer —
packet events on interfaces, TCP state/retransmit/cwnd changes on
sockets, timer fires on the engine, TDF epoch changes on dilated clocks
— into a bounded ring of typed :class:`TraceEvent` records. Recordings
can be saved as JSONL, exported as pcap (:mod:`.pcap`) with timestamps
in physical or any clock's virtual time, and diffed pairwise
(:mod:`.diff`) to locate the first divergent event between two runs.

Recording is default-off: every hook site is a single ``is None`` check.
"""

from .diff import (
    DEFAULT_TIME_TOLERANCE,
    Divergence,
    TraceDiffResult,
    diff_traces,
    summarize_events,
)
from .events import (
    PACKET_KINDS,
    TraceEvent,
    event_from_dict,
    event_to_dict,
    load_jsonl,
    save_jsonl,
)
from .pcap import export_pcap, pcap_timestamp, read_pcap
from .recorder import DEFAULT_CAPACITY, FlightRecorder
from .spec import TRACE_POINTS, TRACEABLE_RUNNERS, TraceSpec

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_TIME_TOLERANCE",
    "Divergence",
    "FlightRecorder",
    "PACKET_KINDS",
    "TRACEABLE_RUNNERS",
    "TRACE_POINTS",
    "TraceDiffResult",
    "TraceEvent",
    "TraceSpec",
    "diff_traces",
    "event_from_dict",
    "event_to_dict",
    "export_pcap",
    "load_jsonl",
    "pcap_timestamp",
    "read_pcap",
    "save_jsonl",
    "summarize_events",
]
