"""pcap export — open a recording in Wireshark or tcptrace.

The emulator never hauls real payload bytes, so a capture is *synthesized*:
for each packet event an Ethernet + IPv4 (+ TCP) header is packed with
pure-stdlib ``struct`` from the :class:`~repro.simnet.packet.Packet` /
:class:`~repro.tcp.segment.Segment` metadata the recorder stored. The
record's ``incl_len`` covers just the synthesized headers while
``orig_len`` reports the true wire size — exactly what a snap-length
capture looks like, which every pcap consumer understands.

Timestamps can be emitted in **physical time** or in **any clock's virtual
time**. Virtual rescaling is *exact*: when the clock exposes
``to_local_exact`` (see :class:`~repro.core.clock.DilatedClock`) the
physical float is mapped through the epoch history in ``Fraction``
arithmetic — TDF 7/3 introduces no drift — and only the final conversion
to integer nanoseconds rounds. The nanosecond pcap magic (0xa1b23c4d) is
used so dilated captures keep their sub-microsecond spacing.

Addresses: node names are assigned ``10.0.x.y`` addresses in first-seen
order (deterministic, since event order is deterministic); MACs embed the
IP so Wireshark's conversation views group flows correctly.
"""

from __future__ import annotations

import struct
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .events import TraceEvent

__all__ = [
    "PCAP_MAGIC_NS",
    "export_pcap",
    "pcap_timestamp",
    "read_pcap",
]

#: Nanosecond-resolution classic pcap magic, little-endian.
PCAP_MAGIC_NS = 0xA1B23C4D

#: DLT_EN10MB: the link type every pcap consumer knows.
_LINKTYPE_ETHERNET = 1

_ETHERTYPE_IPV4 = 0x0800
_PROTO_NUMBERS = {"tcp": 6, "udp": 17}
#: RFC 3692 experimental protocol number for payloads we cannot type.
_PROTO_OPAQUE = 253

_TCP_FLAG_BITS = {"F": 0x01, "S": 0x02, "R": 0x04, ".": 0x10}


def _ip_for(name: str, table: Dict[str, int]) -> bytes:
    """A stable 10.0.x.y address per node name, first-seen order."""
    index = table.get(name)
    if index is None:
        index = len(table) + 1
        table[name] = index
    return struct.pack("!BBBB", 10, 0, (index >> 8) & 0xFF, index & 0xFF)


def _mac_for(ip: bytes) -> bytes:
    """A locally-administered MAC embedding the IP (02:00:<ip>)."""
    return b"\x02\x00" + ip


def _ipv4_checksum(header: bytes) -> int:
    total = 0
    for index in range(0, len(header), 2):
        total += (header[index] << 8) | header[index + 1]
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pcap_timestamp(
    event: TraceEvent,
    time_base: str = "physical",
    clock: Any = None,
) -> Tuple[int, int]:
    """(seconds, nanoseconds) for one event under the chosen time base.

    ``clock`` rescales the event's physical time through the clock —
    exactly, via ``to_local_exact``, when available. ``time_base=
    "virtual"`` (without a clock) uses the virtual timestamp stored at
    capture. Rounding to integer nanoseconds is monotone, so a
    monotonically recorded stream yields monotone pcap timestamps.
    """
    if clock is not None:
        exact = getattr(clock, "to_local_exact", None)
        if exact is not None:
            value: Any = exact(event.physical_time)
        else:
            value = clock.to_local(event.physical_time)
    elif time_base == "virtual":
        if event.virtual_time is None:
            raise ValueError(
                "event has no virtual timestamp (recorder had no clock); "
                "pass a clock to rescale, or export in physical time"
            )
        value = event.virtual_time
    elif time_base == "physical":
        value = event.physical_time
    else:
        raise ValueError(f"unknown time base {time_base!r}")
    nanos = round(Fraction(value) * 1_000_000_000)
    if nanos < 0:
        raise ValueError(f"negative pcap timestamp: {value}")
    return divmod(nanos, 1_000_000_000)


def _frame_for(event: TraceEvent, ip_table: Dict[str, int]) -> bytes:
    """Synthesized Ethernet/IPv4(/TCP) headers for one packet event."""
    src_ip = _ip_for(event.src or event.site, ip_table)
    dst_ip = _ip_for(event.dst or "?", ip_table)
    ethernet = _mac_for(dst_ip) + _mac_for(src_ip) + struct.pack(
        "!H", _ETHERTYPE_IPV4
    )
    if event.protocol == "tcp" and (event.src_port or event.dst_port):
        flag_bits = 0
        for flag in event.flags:
            flag_bits |= _TCP_FLAG_BITS.get(flag, 0)
        if event.payload_len > 0:
            flag_bits |= 0x08  # PSH: every synthetic data segment pushes
        transport = struct.pack(
            "!HHIIBBHHH",
            event.src_port & 0xFFFF,
            event.dst_port & 0xFFFF,
            event.seq & 0xFFFFFFFF,
            event.ack & 0xFFFFFFFF,
            5 << 4,  # data offset: 5 words, no options materialised
            flag_bits,
            min(event.window, 0xFFFF),
            0,  # checksum: left zero (snap-length capture)
            0,
        )
        proto = _PROTO_NUMBERS["tcp"]
        total_len = 20 + len(transport) + event.payload_len
    else:
        transport = b""
        proto = _PROTO_NUMBERS.get(event.protocol, _PROTO_OPAQUE)
        total_len = max(event.size_bytes, 20)
    # ECN bits in the TOS byte: ECT(0) when capable, CE when marked.
    tos = 0x03 if event.flags == "CE" else 0x02 if event.protocol == "tcp" else 0
    ip = struct.pack(
        "!BBHHHBBH4s4s",
        (4 << 4) | 5,
        tos,
        min(total_len, 0xFFFF),
        event.packet_uid & 0xFFFF,
        0x4000,  # DF
        64,
        proto,
        0,
        src_ip,
        dst_ip,
    )
    ip = ip[:10] + struct.pack("!H", _ipv4_checksum(ip)) + ip[12:]
    return ethernet + ip + transport


def export_pcap(
    events: Iterable[TraceEvent],
    path: str,
    kinds: Tuple[str, ...] = ("tx", "rx"),
    time_base: str = "physical",
    clock: Any = None,
) -> int:
    """Write packet events to a classic (nanosecond) pcap; returns count.

    ``kinds`` selects which packet events become capture records — the
    default tx+rx mimics tcpdump on an interface. Non-packet events
    (tcp/timer/clock) never appear in a pcap; use the JSONL recording and
    ``repro-trace summarize`` for those.
    """
    ip_table: Dict[str, int] = {}
    count = 0
    with open(path, "wb") as handle:
        handle.write(struct.pack(
            "<IHHiIII", PCAP_MAGIC_NS, 2, 4, 0, 0, 65535,
            _LINKTYPE_ETHERNET,
        ))
        for event in events:
            if event.category != "packet" or event.kind not in kinds:
                continue
            seconds, nanos = pcap_timestamp(event, time_base, clock)
            frame = _frame_for(event, ip_table)
            # Ethernet framing (14 bytes) on top of the recorded wire size.
            orig_len = max(event.size_bytes + 14, len(frame))
            handle.write(struct.pack(
                "<IIII", seconds, nanos, len(frame), orig_len
            ))
            handle.write(frame)
            count += 1
    return count


def read_pcap(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Header-level pcap reader (pure stdlib) for tests and smoke checks.

    Returns ``(global_header, records)``; each record dict carries the
    timestamp (``ts`` as a float of seconds, plus exact ``ts_sec`` /
    ``ts_nsec``), lengths, IP addressing, and TCP fields when present.
    Raises ``ValueError`` on a file this exporter could not have written.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < 24:
        raise ValueError(f"{path}: truncated pcap (no global header)")
    magic, major, minor, _, _, snaplen, linktype = struct.unpack(
        "<IHHiIII", data[:24]
    )
    if magic != PCAP_MAGIC_NS:
        raise ValueError(f"{path}: bad magic {magic:#x}")
    header = {
        "magic": magic, "version": (major, minor),
        "snaplen": snaplen, "linktype": linktype,
    }
    records: List[Dict[str, Any]] = []
    offset = 24
    while offset < len(data):
        if offset + 16 > len(data):
            raise ValueError(f"{path}: truncated record header at {offset}")
        ts_sec, ts_nsec, incl_len, orig_len = struct.unpack(
            "<IIII", data[offset:offset + 16]
        )
        offset += 16
        frame = data[offset:offset + incl_len]
        if len(frame) != incl_len:
            raise ValueError(f"{path}: truncated frame at {offset}")
        offset += incl_len
        record: Dict[str, Any] = {
            "ts_sec": ts_sec, "ts_nsec": ts_nsec,
            "ts": ts_sec + ts_nsec / 1e9,
            "incl_len": incl_len, "orig_len": orig_len,
        }
        if len(frame) >= 34 and frame[12:14] == struct.pack(
            "!H", _ETHERTYPE_IPV4
        ):
            ip = frame[14:34]
            record["ip_total_len"] = struct.unpack("!H", ip[2:4])[0]
            record["proto"] = ip[9]
            record["src_ip"] = ".".join(str(b) for b in ip[12:16])
            record["dst_ip"] = ".".join(str(b) for b in ip[16:20])
            if ip[9] == _PROTO_NUMBERS["tcp"] and len(frame) >= 54:
                tcp = frame[34:54]
                (record["src_port"], record["dst_port"], record["seq"],
                 record["ack"]) = struct.unpack("!HHII", tcp[:12])
                record["tcp_flags"] = tcp[13]
                record["window"] = struct.unpack("!H", tcp[14:16])[0]
        records.append(record)
    return header, records
