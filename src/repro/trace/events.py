"""Typed structured trace events and their on-disk (JSONL) form.

One :class:`TraceEvent` describes one observed fact, across every layer the
flight recorder instruments:

``packet``
    ``enqueue`` / ``tx`` / ``rx`` / ``drop`` on an interface. Drops carry
    the PR-2 taxonomy reason (``"queue"``, ``"loss"``, ``"flap"``…) in
    ``reason``. When the packet's payload is a TCP segment the TCP header
    fields ride along so a pcap can be synthesized later.
``tcp``
    ``state`` (transition, ``reason`` = ``"OLD->NEW"``), ``retransmit``
    (``seq``/``payload_len`` of the resent chunk) and ``cwnd`` (``value`` =
    the new congestion window in bytes, ``reason`` = what moved it).
``timer``
    ``fire`` — one executed engine event; ``site`` is the callback's
    qualified name.
``clock``
    ``epoch`` — a runtime TDF change; ``reason`` = ``"old->new"`` and
    ``value`` = the new TDF as a float.
``realtime``
    ``slip`` — one deadline miss under the real-time driver; ``value`` =
    the slip in seconds past the wall deadline, ``reason`` = the catch-up
    policy in force (``"run"`` or ``"drop"``), ``site`` = the driver name.

Every event captures the engine's physical time and, when the recorder
owns a clock, that clock's virtual time *at capture* — so recordings can
be replayed, exported, or diffed in either time base without re-deriving
the epoch history.

Events are plain picklable data (they cross the sweep runner's process
pool inside result dataclasses) and serialise to one JSON object per line;
defaulted fields are omitted so bulk captures stay compact.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "TraceEvent",
    "PACKET_KINDS",
    "event_to_dict",
    "event_from_dict",
    "save_jsonl",
    "load_jsonl",
]

#: Packet-event kinds, in hot-path order.
PACKET_KINDS = ("enqueue", "tx", "rx", "drop")


@dataclass(slots=True)
class TraceEvent:
    """One structured observation; see the module docstring for the schema."""

    category: str  # 'packet' | 'tcp' | 'timer' | 'clock'
    kind: str
    physical_time: float
    #: The owning clock's local time at capture (None: recorder had no clock).
    virtual_time: Optional[float] = None
    #: Where it happened: interface name, connection 4-tuple, clock label,
    #: or callback qualname.
    site: str = ""
    flow_id: Optional[str] = None
    packet_uid: int = 0
    size_bytes: int = 0
    #: Drop-taxonomy reason / TCP transition or cause / "old->new" TDF.
    reason: Optional[str] = None
    src: str = ""
    dst: str = ""
    protocol: str = ""
    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    payload_len: int = 0
    flags: str = ""
    window: int = 0
    #: Numeric payload: cwnd in bytes ('tcp'/'cwnd'), new TDF ('clock').
    value: float = 0.0

    def stream_key(self) -> str:
        """The alignment key the diff engine groups by (flow + direction)."""
        if self.category == "packet":
            flow = self.flow_id or f"{self.src}:{self.src_port}>" \
                                   f"{self.dst}:{self.dst_port}"
            return f"packet/{self.site}/{flow}/{self.kind}"
        return f"{self.category}/{self.site}/{self.kind}"


_FIELDS = tuple(f.name for f in dataclasses.fields(TraceEvent))
_DEFAULTS = {
    f.name: f.default
    for f in dataclasses.fields(TraceEvent)
    if f.default is not dataclasses.MISSING
}


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    """A compact dict: defaulted fields are omitted."""
    out: Dict[str, Any] = {}
    for name in _FIELDS:
        value = getattr(event, name)
        if name in _DEFAULTS and value == _DEFAULTS[name]:
            continue
        out[name] = value
    return out


def event_from_dict(data: Dict[str, Any]) -> TraceEvent:
    """Inverse of :func:`event_to_dict`; unknown keys are ignored (merged
    figure traces tag each line with its cell key, for instance)."""
    kwargs = {name: data[name] for name in _FIELDS if name in data}
    return TraceEvent(**kwargs)


def save_jsonl(
    events: Iterable[TraceEvent],
    path: str,
    extra: Optional[Iterable[Dict[str, Any]]] = None,
) -> int:
    """Write one JSON object per event; returns the event count.

    ``extra`` (parallel to ``events``) merges additional keys into each
    line — the sweep integration uses it to tag events with their cell.
    """
    count = 0
    extras = iter(extra) if extra is not None else None
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            record = event_to_dict(event)
            if extras is not None:
                record.update(next(extras))
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_jsonl(path: str) -> List[TraceEvent]:
    """Read a recording written by :func:`save_jsonl` (blank lines skipped)."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            events.append(event_from_dict(json.loads(line)))
    return events
