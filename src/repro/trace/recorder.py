"""The flight recorder — a bounded ring buffer of structured trace events.

A :class:`FlightRecorder` is the single observer object the rest of the
library reports to. It can be attached

* **per interface** (``attach_interface``) — packet enqueue/tx/rx/drop,
  the drop carrying its taxonomy reason;
* **per socket** (``attach_socket``) — TCP state transitions, retransmits
  and cwnd changes;
* **per clock** (``attach_clock``) — runtime TDF epoch changes;
* **per engine** (``attach_engine``) — one ``timer``/``fire`` event per
  executed engine event;
* **simulation-wide** (``attach_network``) — every interface of a
  :class:`~repro.simnet.topology.Network`, plus (optionally) the engine.

Overhead contract: recording is **default-off**. Each instrumented site
holds a single ``recorder`` slot initialised to ``None`` and guards the
hook with one ``is None`` check — no event objects, no dict lookups, no
allocation on the disabled path. The golden determinism pins and the
``BENCH_engine`` numbers are therefore unchanged when no recorder is
attached; and because the recorder only *appends to a deque*, attaching
one can never perturb event order either (pinned by the trace tests).

The buffer is a ``collections.deque(maxlen=capacity)``: when full, the
oldest event is evicted — a flight recorder keeps the most recent history.
``recorded`` counts everything ever seen, so ``evicted`` is observable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, List, Optional

from .events import TraceEvent

__all__ = ["FlightRecorder"]

#: Default ring capacity (events); None means unbounded.
DEFAULT_CAPACITY = 1 << 16


class FlightRecorder:
    """Bounded ring buffer of :class:`TraceEvent`, fed by layer hooks.

    Parameters
    ----------
    capacity:
        Ring size in events; ``None`` records without bound (the legacy
        :class:`~repro.simnet.trace.PacketTrace` shim uses this).
    clock:
        Optional owning clock; when set, every event also captures
        ``clock.to_local(physical_time)`` as its virtual timestamp.
    name:
        Label for reports.
    packet_kinds / flow_id:
        Optional packet-event filters (non-packet events are unaffected).
    """

    def __init__(
        self,
        capacity: Optional[int] = DEFAULT_CAPACITY,
        clock: Any = None,
        name: str = "recorder",
        packet_kinds: Optional[Any] = None,
        flow_id: Optional[str] = None,
    ) -> None:
        self.capacity = capacity
        self.clock = clock
        self.name = name
        self._kinds = frozenset(packet_kinds) if packet_kinds is not None else None
        self._flow_id = flow_id
        self._buffer: deque = deque(maxlen=capacity)
        #: Events ever recorded (including ones the ring has since evicted).
        self.recorded = 0

    # -------------------------------------------------------------- contents

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buffer)

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.recorded - len(self._buffer)

    def snapshot(self) -> List[TraceEvent]:
        """The buffered events, oldest first, as a fresh list."""
        return list(self._buffer)

    def clear(self) -> None:
        """Drop the buffered events (the ever-recorded count is kept)."""
        self._buffer.clear()

    # ------------------------------------------------------------ attachment

    def attach_interface(self, interface: Any) -> "FlightRecorder":
        """Observe packet events on ``interface`` (one recorder per NIC)."""
        current = getattr(interface, "recorder", None)
        if current is not None and current is not self:
            raise ValueError(
                f"interface {interface.name!r} already has a recorder "
                f"({current.name!r}); an interface reports to one recorder"
            )
        interface.recorder = self
        return self

    def attach_socket(self, sock: Any) -> "FlightRecorder":
        """Observe TCP state / retransmit / cwnd events on ``sock``."""
        sock.recorder = self
        return self

    def attach_clock(self, clock: Any, label: str = "") -> "FlightRecorder":
        """Observe TDF epoch changes on a :class:`DilatedClock`."""
        clock.recorder = self
        if label:
            clock.trace_label = label
        return self

    def attach_engine(self, sim: Any) -> "FlightRecorder":
        """Observe every executed engine event (``timer``/``fire``)."""
        sim.attach_recorder(self)
        return self

    def attach_network(self, net: Any, timers: bool = False) -> "FlightRecorder":
        """Simulation-wide: every interface of ``net`` (+ engine timers)."""
        for node in net.nodes.values():
            for interface in node.interfaces:
                self.attach_interface(interface)
        if timers:
            self.attach_engine(net.sim)
        return self

    # -------------------------------------------------------------- recording

    def _virtual(self, physical_time: float) -> Optional[float]:
        clock = self.clock
        if clock is None:
            return None
        return clock.to_local(physical_time)

    def record_packet(
        self, kind: str, interface: Any, packet: Any,
        reason: Optional[str] = None,
    ) -> None:
        """Hook target for :class:`~repro.simnet.nic.Interface`."""
        if self._kinds is not None and kind not in self._kinds:
            return
        if self._flow_id is not None and packet.flow_id != self._flow_id:
            return
        time = interface.sim.now
        event = TraceEvent(
            category="packet",
            kind=kind,
            physical_time=time,
            virtual_time=self._virtual(time),
            site=interface.name,
            flow_id=packet.flow_id,
            packet_uid=packet.uid,
            size_bytes=packet.size_bytes,
            reason=reason,
            src=packet.src,
            dst=packet.dst,
            protocol=packet.protocol,
        )
        segment = packet.payload
        if segment is not None and hasattr(segment, "src_port"):
            event.src_port = segment.src_port
            event.dst_port = segment.dst_port
            event.seq = getattr(segment, "seq", 0)
            event.ack = getattr(segment, "ack", 0)
            event.payload_len = getattr(segment, "length", 0)
            event.window = getattr(segment, "window", 0)
            flags = getattr(segment, "flags", None)
            if callable(flags):
                event.flags = flags()
        self._buffer.append(event)
        self.recorded += 1

    def record_tcp(
        self, kind: str, sock: Any, reason: str, value: float = 0.0,
        seq: int = 0, length: int = 0,
    ) -> None:
        """Hook target for :class:`~repro.tcp.socket.TcpSocket`."""
        time = sock.node.sim.now
        self._buffer.append(TraceEvent(
            category="tcp",
            kind=kind,
            physical_time=time,
            virtual_time=self._virtual(time),
            site=(f"{sock.node.name}:{sock.local_port}>"
                  f"{sock.remote_addr}:{sock.remote_port}"),
            flow_id=sock.flow_id,
            reason=reason,
            value=value,
            seq=seq,
            payload_len=length,
        ))
        self.recorded += 1

    def record_timer(self, time: float, fn: Any) -> None:
        """Hook target for the engine run loop (one call per executed event)."""
        self._buffer.append(TraceEvent(
            category="timer",
            kind="fire",
            physical_time=time,
            virtual_time=self._virtual(time),
            site=getattr(fn, "__qualname__", repr(fn)),
        ))
        self.recorded += 1

    def record_realtime(
        self, kind: str, physical_time: float, site: str = "realtime",
        value: float = 0.0, reason: Optional[str] = None,
    ) -> None:
        """Hook target for :class:`~repro.realtime.driver.RealtimeDriver`.

        One ``realtime``/``slip`` event per deadline miss: ``value`` is the
        slip in seconds, ``reason`` the catch-up policy in force — so
        ``repro-trace diff``/``summarize`` can localize where pacing broke
        down on the same timeline as the packet and timer events.
        """
        self._buffer.append(TraceEvent(
            category="realtime",
            kind=kind,
            physical_time=physical_time,
            virtual_time=self._virtual(physical_time),
            site=site,
            reason=reason,
            value=value,
        ))
        self.recorded += 1

    def record_epoch(
        self, clock: Any, physical_time: float, virtual_time: float,
        old_tdf: Any, new_tdf: Any,
    ) -> None:
        """Hook target for :meth:`DilatedClock.set_tdf`."""
        old = getattr(old_tdf, "value", old_tdf)
        new = getattr(new_tdf, "value", new_tdf)
        self._buffer.append(TraceEvent(
            category="clock",
            kind="epoch",
            physical_time=physical_time,
            virtual_time=virtual_time,
            site=getattr(clock, "trace_label", "") or "clock",
            reason=f"{old}->{new}",
            value=float(new),
        ))
        self.recorded += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlightRecorder({self.name!r}, {len(self)}/{self.capacity} "
            f"buffered, {self.recorded} recorded)"
        )
