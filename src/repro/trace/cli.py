"""``repro-trace`` — capture, export, diff, and summarize flight recordings.

Examples::

    repro-trace capture fig3 --cells rtt40-tdf1,rtt40-tdf10 --out traces
    repro-trace export traces/fig3-rtt40-tdf10.jsonl --time-base virtual
    repro-trace diff traces/fig3-rtt40-tdf10.jsonl traces/fig3-rtt40-tdf1.jsonl
    repro-trace summarize traces/fig3-rtt40-tdf1.jsonl

``capture`` runs a figure's traceable cells (in-process, deterministic)
with a flight recorder attached and writes one JSONL recording per cell.
``diff`` aligns two recordings by flow and packet sequence and reports
the first divergent event with context; it exits 1 when the recordings
diverge, which is how the CI trace tier pins dilation equivalence at the
per-packet level.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .diff import DEFAULT_TIME_TOLERANCE, diff_traces, summarize_events
from .events import load_jsonl, save_jsonl
from .pcap import export_pcap
from .spec import TRACEABLE_RUNNERS, TraceSpec

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Flight-recorder tooling: capture, export, diff, "
                    "summarize.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    capture = sub.add_parser(
        "capture", help="run a figure's traceable cells with a recorder "
                        "attached; one JSONL per cell",
    )
    capture.add_argument("figure", help="experiment id (e.g. fig3)")
    capture.add_argument(
        "--cells", metavar="KEYS",
        help="comma-separated cell keys to run (default: every traceable "
             "cell of the figure)",
    )
    capture.add_argument(
        "--spec", metavar="SPEC", default="bottleneck",
        help="trace spec, point[:key=value,...] (default: bottleneck)",
    )
    capture.add_argument(
        "--out", metavar="DIR", default="traces",
        help="output directory (default: traces)",
    )
    capture.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run shardable cells on N worker processes with the "
             "conservative sharded engine (default: 1); the CI shard tier "
             "captures the same cell at --shards 1 and 2 and diffs the "
             "recordings to pin event-for-event identity",
    )
    capture.add_argument(
        "--fidelity",
        choices=("packet", "hybrid"),
        default="packet",
        help="engine fidelity for fluid-capable cells: 'packet' (default, "
             "bit-exact golden behaviour) or 'hybrid' (fluid fast path for "
             "steady-state bulk); capture both and diff to see exactly "
             "where the fluid engine coarsens the packet timeline",
    )
    capture.add_argument(
        "--schedule", metavar="SPEC", default=None,
        help="drive each cell's dynamic link from a virtual-time schedule, "
             "kind[:key=value,...] with kind leo or csv (e.g. "
             "'leo:period=1.0,count=4,outage=0.03'); the CI schedule tier "
             "captures the same scheduled cell at --shards 1 and 2 and "
             "diffs the recordings to zero divergence",
    )
    capture.add_argument(
        "--salt", type=float, default=None, metavar="S",
        help="explicit delay_salt for swarm cells (run_bittorrent only). "
             "--shards 2+ salts swarm cells automatically; pass the same "
             "value here on the --shards 1 baseline so both recordings "
             "trace the identical salted simulation",
    )

    export = sub.add_parser(
        "export", help="synthesize a pcap from a JSONL recording",
    )
    export.add_argument("recording", help="JSONL recording to export")
    export.add_argument(
        "-o", "--output", metavar="PCAP",
        help="output path (default: recording with .pcap suffix)",
    )
    export.add_argument(
        "--kinds", metavar="KINDS", default="tx+rx",
        help="packet kinds to include, +-separated (default: tx+rx)",
    )
    export.add_argument(
        "--time-base", choices=("physical", "virtual"), default="physical",
        help="timestamp axis; 'virtual' uses the virtual time the "
             "recorder's clock stamped at capture",
    )

    diff = sub.add_parser(
        "diff", help="align two recordings and report the first divergence",
    )
    diff.add_argument("a", help="first recording (e.g. the dilated run)")
    diff.add_argument("b", help="second recording (e.g. the baseline)")
    diff.add_argument(
        "--tolerance", type=float, default=DEFAULT_TIME_TOLERANCE,
        metavar="S",
        help=f"absolute time tolerance in seconds "
             f"(default: {DEFAULT_TIME_TOLERANCE})",
    )
    diff.add_argument(
        "--ignore-time", action="store_true",
        help="compare event content only, not timestamps",
    )
    diff.add_argument(
        "--context", type=int, default=3, metavar="N",
        help="events of context around the first divergence (default: 3)",
    )

    summarize = sub.add_parser(
        "summarize", help="one-screen summary of a recording",
    )
    summarize.add_argument("recording", help="JSONL recording to summarize")
    return parser


def _cmd_capture(args: argparse.Namespace) -> int:
    from ..harness.figures import CELL_MODEL
    from ..harness.runner import CellSpec, execute_cell

    try:
        model = CELL_MODEL[args.figure]
    except KeyError:
        print(f"unknown figure {args.figure!r}; known: "
              + ", ".join(CELL_MODEL), file=sys.stderr)
        return 2
    try:
        trace = TraceSpec.parse(args.spec)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    cells = [spec for spec in model.cells(None)
             if spec.runner in TRACEABLE_RUNNERS]
    if not cells:
        print(f"figure {args.figure!r} has no traceable cells "
              f"(traceable runners: {', '.join(sorted(TRACEABLE_RUNNERS))})",
              file=sys.stderr)
        return 2
    if args.cells:
        wanted = [key.strip() for key in args.cells.split(",") if key.strip()]
        by_key = {spec.key: spec for spec in cells}
        missing = [key for key in wanted if key not in by_key]
        if missing:
            print(f"unknown cell key(s): {', '.join(missing)}; "
                  f"known: {', '.join(by_key)}", file=sys.stderr)
            return 2
        cells = [by_key[key] for key in wanted]
    if args.shards < 1:
        print(f"--shards must be >= 1: {args.shards}", file=sys.stderr)
        return 2
    if args.shards != 1:
        from ..parallel.shard import SHARDABLE_RUNNERS, shard_cell_kwargs

        unshardable = [s.key for s in cells
                       if s.runner not in SHARDABLE_RUNNERS]
        if unshardable:
            print(f"cell(s) not shardable: {', '.join(unshardable)} "
                  f"(shardable runners: "
                  f"{', '.join(sorted(SHARDABLE_RUNNERS))})",
                  file=sys.stderr)
            return 2
    if args.salt is not None:
        unsaltable = [s.key for s in cells if s.runner != "run_bittorrent"]
        if unsaltable:
            print(f"--salt only applies to swarm cells; not saltable: "
                  f"{', '.join(unsaltable)}", file=sys.stderr)
            return 2
    if args.fidelity != "packet":
        from ..harness.experiments import FLUID_RUNNERS

        unfluid = [s.key for s in cells if s.runner not in FLUID_RUNNERS]
        if unfluid:
            print(f"cell(s) not fluid-capable: {', '.join(unfluid)} "
                  f"(fluid runners: {', '.join(sorted(FLUID_RUNNERS))})",
                  file=sys.stderr)
            return 2
    schedule_spec = None
    if args.schedule is not None:
        from ..harness.experiments import SCHEDULE_RUNNERS
        from ..simnet.errors import ConfigurationError
        from ..simnet.schedule import ScheduleSpec

        try:
            schedule_spec = ScheduleSpec.parse(args.schedule)
        except ConfigurationError as error:
            print(str(error), file=sys.stderr)
            return 2
        unscheduled = [s.key for s in cells
                       if s.runner not in SCHEDULE_RUNNERS]
        if unscheduled:
            print(f"cell(s) not schedule-capable: {', '.join(unscheduled)} "
                  f"(schedule runners: "
                  f"{', '.join(sorted(SCHEDULE_RUNNERS))})",
                  file=sys.stderr)
            return 2
    os.makedirs(args.out, exist_ok=True)
    for spec in cells:
        base = dict(spec.kwargs)
        if args.salt is not None:
            base["delay_salt"] = args.salt
        if args.fidelity != "packet":
            base["fidelity"] = args.fidelity
        if schedule_spec is not None:
            base["schedule"] = schedule_spec
        if args.shards != 1:
            kwargs = shard_cell_kwargs(spec.runner, base, args.shards)
        else:
            kwargs = base
        kwargs["trace"] = trace
        traced = CellSpec(spec.figure_id, spec.key, spec.runner, kwargs)
        result, _ = execute_cell(traced)
        events = getattr(result, "trace_events", []) or []
        path = os.path.join(args.out, f"{spec.figure_id}-{spec.key}.jsonl")
        save_jsonl(events, path)
        print(f"{path}: {len(events)} events")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    output = args.output
    if output is None:
        stem, _ = os.path.splitext(args.recording)
        output = stem + ".pcap"
    try:
        events = load_jsonl(args.recording)
        count = export_pcap(
            events, output,
            kinds=tuple(args.kinds.split("+")),
            time_base=args.time_base,
        )
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(f"{output}: {count} packets ({args.time_base} time)")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        events_a = load_jsonl(args.a)
        events_b = load_jsonl(args.b)
    except OSError as error:
        print(str(error), file=sys.stderr)
        return 2
    result = diff_traces(
        events_a, events_b,
        time_tolerance=args.tolerance,
        compare_time=not args.ignore_time,
        context=args.context,
    )
    label_a = os.path.basename(args.a)
    label_b = os.path.basename(args.b)
    print(result.render(context=args.context,
                        label_a=label_a, label_b=label_b))
    return 0 if result.identical else 1


def _cmd_summarize(args: argparse.Namespace) -> int:
    from ..stats.summary import describe

    try:
        events = load_jsonl(args.recording)
    except OSError as error:
        print(str(error), file=sys.stderr)
        return 2
    summary = summarize_events(events)
    print(f"{args.recording}: {summary['events']} events, "
          f"{len(summary['flows'])} flow(s), "
          f"{summary['packet_bytes']} packet bytes, "
          f"{summary['span_physical_s']:.6f} s physical span")
    for kind, count in sorted(summary["by_kind"].items()):
        print(f"  {kind}: {count}")
    if summary["drops_by_reason"]:
        print("  drops by reason:")
        for reason, count in sorted(summary["drops_by_reason"].items()):
            print(f"    {reason}: {count}")
    stamps = [event.physical_time for event in events]
    gaps = [b - a for a, b in zip(stamps, stamps[1:])]
    print(f"  inter-event gaps: {describe(gaps, unit='s')}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "capture": _cmd_capture,
        "export": _cmd_export,
        "diff": _cmd_diff,
        "summarize": _cmd_summarize,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
