"""Streaming summary statistics (Welford's algorithm).

Used by every measurement layer: response times, interarrivals, per-flow
goodput. Welford's online update is numerically stable over millions of
samples and needs O(1) memory, which matters for long simulations.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

__all__ = ["Summary", "describe"]


def describe(values: Iterable[float], unit: str = "") -> str:
    """One-line n/mean/stdev/min/max rendering of a sample set.

    ``repro-trace summarize`` uses this for inter-event gaps; anything
    with a list of floats can.
    """
    summary = Summary()
    summary.extend(values)
    if summary.count == 0:
        return "n=0"
    suffix = f" {unit}" if unit else ""
    return (
        f"n={summary.count}, mean={summary.mean:.6g}{suffix}, "
        f"stdev={summary.stdev:.6g}, min={summary.minimum:.6g}, "
        f"max={summary.maximum:.6g}"
    )


class Summary:
    """Online mean/variance/min/max accumulator."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._total = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        self._total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return self._total

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator; 0.0 below two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return self._min if self._min is not None else 0.0

    @property
    def maximum(self) -> float:
        """Largest sample (0.0 when empty)."""
        return self._max if self._max is not None else 0.0

    def merge(self, other: "Summary") -> "Summary":
        """Combine two summaries (parallel Welford merge); returns a new one."""
        merged = Summary()
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other.mean - self.mean
        merged._mean = self.mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged._total = self._total + other._total
        mins = [m for m in (self._min, other._min) if m is not None]
        maxs = [m for m in (self._max, other._max) if m is not None]
        merged._min = min(mins) if mins else None
        merged._max = max(maxs) if maxs else None
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Summary(n={self.count}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g}, min={self.minimum:.6g}, "
            f"max={self.maximum:.6g})"
        )
