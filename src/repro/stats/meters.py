"""Measurement instruments that read a (possibly dilated) clock.

Meters are the in-guest measurement tools — the emulated ``iperf -i`` /
application timers. They deliberately take a :class:`Clock` rather than the
simulator so that a meter inside a dilated VM reports rates per *virtual*
second, exactly as instrumentation inside a dilated Xen guest did.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..simnet.clock import Clock
from .summary import Summary

__all__ = ["ThroughputMeter", "IntervalRecorder", "LatencyMeter"]


class ThroughputMeter:
    """Counts bytes and reports rates over the local clock's time."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self.started_at = clock.now()
        self.bytes = 0
        self._last_mark_time = self.started_at
        self._last_mark_bytes = 0

    def add(self, n_bytes: int) -> None:
        """Account ``n_bytes`` delivered now."""
        self.bytes += n_bytes

    @property
    def elapsed(self) -> float:
        """Local seconds since the meter was created."""
        return self.clock.now() - self.started_at

    def rate_bps(self) -> float:
        """Average rate since creation, bits per local second."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return 0.0
        return self.bytes * 8 / elapsed

    def interval_rate_bps(self) -> float:
        """Rate since the previous call to this method (interval report).

        A zero-width interval (two reads at the same local instant) reports
        0.0 **without consuming the marks** — bytes delivered at that
        instant stay attributed to the next real interval, so the sum of
        interval deltas always equals the meter's total.
        """
        now = self.clock.now()
        interval = now - self._last_mark_time
        if interval <= 0:
            return 0.0
        delta = self.bytes - self._last_mark_bytes
        self._last_mark_time = now
        self._last_mark_bytes = self.bytes
        return delta * 8 / interval


class IntervalRecorder:
    """Records event timestamps and exposes interarrival gaps (local time)."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self.timestamps: List[float] = []

    def mark(self) -> None:
        """Record one event at the current local time."""
        self.timestamps.append(self.clock.now())

    def interarrivals(self) -> List[float]:
        """Gaps between consecutive recorded events."""
        return [b - a for a, b in zip(self.timestamps, self.timestamps[1:])]

    def __len__(self) -> int:
        return len(self.timestamps)


class LatencyMeter:
    """Start/stop timing of operations keyed by an id, in local seconds."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._open: dict = {}
        self.summary = Summary()
        self.samples: List[float] = []
        #: Unfinished timings discarded by a ``start()`` on the same key.
        #: Each one is a measurement that silently vanished — an operation
        #: that was started, never stopped, and then restarted — so callers
        #: auditing in-flight losses can reconcile start/stop counts.
        self.overwrites = 0

    def start(self, key) -> None:
        """Begin timing ``key`` (overwrites an unfinished timing).

        The discarded timing, if any, is counted in :attr:`overwrites`
        rather than dropped without trace.
        """
        if key in self._open:
            self.overwrites += 1
        self._open[key] = self.clock.now()

    def stop(self, key) -> Optional[float]:
        """Finish timing ``key``; returns the latency or None if unknown."""
        started = self._open.pop(key, None)
        if started is None:
            return None
        latency = self.clock.now() - started
        self.summary.add(latency)
        self.samples.append(latency)
        return latency

    @property
    def in_flight(self) -> int:
        """Operations started but not yet stopped."""
        return len(self._open)

    def __repr__(self) -> str:
        return (
            f"LatencyMeter(samples={len(self.samples)}, "
            f"in_flight={self.in_flight}, overwrites={self.overwrites})"
        )
