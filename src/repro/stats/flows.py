"""Per-flow accounting across many observation points.

A :class:`FlowMonitor` is the emulator's flow-level instrument (think
``nfdump``/ns-3's FlowMonitor): attach it to any number of interfaces and
it aggregates per-``flow_id`` byte/packet/drop counters plus first/last
observation times. Times are mapped through an optional clock, so a
monitor owned by a dilated guest reports virtual timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..simnet.clock import Clock
from ..simnet.nic import Interface
from ..simnet.packet import Packet

__all__ = ["FlowStats", "FlowMonitor"]

#: Label under which packets without a flow_id are accumulated.
UNLABELLED = "<unlabelled>"


@dataclass
class FlowStats:
    """Counters for one flow id."""

    flow_id: str
    rx_packets: int = 0
    rx_bytes: int = 0
    tx_packets: int = 0
    tx_bytes: int = 0
    drops: int = 0
    dropped_bytes: int = 0
    first_seen: Optional[float] = None
    last_seen: Optional[float] = None

    def duration(self) -> float:
        """Seconds between first and last observation (0 if single event)."""
        if self.first_seen is None or self.last_seen is None:
            return 0.0
        return self.last_seen - self.first_seen

    def rx_rate_bps(self) -> float:
        """Average received rate over the observed lifetime."""
        span = self.duration()
        if span <= 0:
            return 0.0
        return self.rx_bytes * 8 / span


class FlowMonitor:
    """Aggregates per-flow statistics from interface taps."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock
        self.flows: Dict[str, FlowStats] = {}
        #: Interfaces under observation, for the drop-taxonomy summary.
        self.interfaces: List[Interface] = []
        #: TCP sockets registered via :meth:`track_socket`.
        self.sockets: List[object] = []

    def watch(self, interface: Interface,
              kinds: Iterable[str] = ("rx", "tx", "drop")) -> None:
        """Start observing an interface; may be called on many."""
        wanted = frozenset(kinds)

        def tap(kind: str, time: float, packet: Packet) -> None:
            if kind not in wanted:
                return
            self._observe(kind, time, packet)

        interface.add_tap(tap)
        self.interfaces.append(interface)

    def _observe(self, kind: str, time: float, packet: Packet) -> None:
        flow_id = packet.flow_id if packet.flow_id is not None else UNLABELLED
        stats = self.flows.get(flow_id)
        if stats is None:
            stats = FlowStats(flow_id=flow_id)
            self.flows[flow_id] = stats
        local = self.clock.to_local(time) if self.clock is not None else time
        if stats.first_seen is None:
            stats.first_seen = local
        stats.last_seen = local
        if kind == "rx":
            stats.rx_packets += 1
            stats.rx_bytes += packet.size_bytes
        elif kind == "tx":
            stats.tx_packets += 1
            stats.tx_bytes += packet.size_bytes
        elif kind == "drop":
            stats.drops += 1
            stats.dropped_bytes += packet.size_bytes

    def flow(self, flow_id: str) -> FlowStats:
        """Stats for one flow (KeyError if never observed)."""
        return self.flows[flow_id]

    def top_by_rx_bytes(self, n: int = 10) -> List[FlowStats]:
        """The n heaviest flows by received volume."""
        return sorted(
            self.flows.values(), key=lambda s: -s.rx_bytes
        )[:n]

    def total_drops(self) -> int:
        """Drops across every observed flow."""
        return sum(stats.drops for stats in self.flows.values())

    # Drop taxonomy and TCP accounting ---------------------------------

    def interface_drops(self) -> Dict[str, Dict[str, int]]:
        """Per-interface drop taxonomy (``{iface name: {reason: count}}``).

        Reasons are the NIC taxonomy: "down", "injected", "queue",
        "shaper", plus impairment-stage reasons ("loss", "reorder",
        "duplicate", "corrupt", "flap"). Interfaces with no drops map to
        ``{}``.
        """
        return {iface.name: dict(iface.drops) for iface in self.interfaces}

    def drops_by_reason(self) -> Dict[str, int]:
        """The taxonomy aggregated across every watched interface."""
        totals: Dict[str, int] = {}
        for iface in self.interfaces:
            for reason, count in iface.drops.items():
                totals[reason] = totals.get(reason, 0) + count
        return totals

    def track_socket(self, sock: object) -> None:
        """Register a TCP socket for retransmission accounting."""
        self.sockets.append(sock)

    def tcp_summary(self) -> Dict[str, int]:
        """Retransmission/dupack accounting summed over tracked sockets.

        Keys mirror ``TcpSocket.info()``: retransmits, timeouts,
        dupacks_received, fast_retransmits, fast_recoveries.
        """
        keys = ("retransmits", "timeouts", "dupacks_received",
                "fast_retransmits", "fast_recoveries")
        totals = {key: 0 for key in keys}
        for sock in self.sockets:
            for key in keys:
                totals[key] += getattr(sock, key, 0)
        return totals
