"""Empirical distributions: percentiles, CDFs, and the KS distance.

The figure-5 and figure-9 benchmarks compare *distributions* between the
dilated and baseline runs (packet interarrival times, BitTorrent download
times). The two-sample Kolmogorov–Smirnov statistic is the paper-standard
way to quantify how far apart two empirical CDFs are.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

__all__ = ["percentile", "Cdf", "ks_distance"]


def percentile(samples: Sequence[float], q: float,
               is_sorted: bool = False) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches numpy's default ("linear") method so results line up with any
    offline analysis of the exported data. ``is_sorted=True`` promises the
    samples are already in ascending order and skips the O(n log n)
    re-sort — the fast path :class:`Cdf` uses for every quantile, since it
    sorts exactly once at construction.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100]: {q}")
    ordered = samples if is_sorted else sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


class Cdf:
    """An empirical cumulative distribution function."""

    def __init__(self, samples: Sequence[float]) -> None:
        if not samples:
            raise ValueError("cannot build a CDF from zero samples")
        self._sorted: List[float] = sorted(samples)

    def __len__(self) -> int:
        return len(self._sorted)

    def evaluate(self, x: float) -> float:
        """P(X <= x)."""
        return bisect.bisect_right(self._sorted, x) / len(self._sorted)

    def quantile(self, q: float) -> float:
        """Inverse CDF at ``q`` in [0, 1] (no re-sort: samples are sorted)."""
        return percentile(self._sorted, q * 100, is_sorted=True)

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def points(self, steps: int = 50) -> List[Tuple[float, float]]:
        """Evenly spaced (value, probability) pairs for plotting/reporting."""
        if steps < 2:
            raise ValueError("need at least two steps")
        low, high = self._sorted[0], self._sorted[-1]
        if high == low:
            return [(low, 1.0)]
        result = []
        for index in range(steps):
            x = low + (high - low) * index / (steps - 1)
            result.append((x, self.evaluate(x)))
        return result


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic: sup |F_a(x) - F_b(x)|."""
    if not a or not b:
        raise ValueError("KS distance needs non-empty samples on both sides")
    sa, sb = sorted(a), sorted(b)
    na, nb = len(sa), len(sb)
    ia = ib = 0
    distance = 0.0
    # Sweep the union of values; after consuming everything <= v on both
    # sides the pointer ratio difference is |F_a(v) - F_b(v)|. Handling all
    # ties of v together is what a naive merge walk gets wrong.
    for value in sorted(set(sa) | set(sb)):
        while ia < na and sa[ia] <= value:
            ia += 1
        while ib < nb and sb[ib] <= value:
            ib += 1
        distance = max(distance, abs(ia / na - ib / nb))
    return distance
