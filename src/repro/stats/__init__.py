"""``repro.stats`` — measurement and distribution-comparison utilities."""

from .cdf import Cdf, ks_distance, percentile
from .engineprof import EngineProfiler, profiled
from .flows import FlowMonitor, FlowStats
from .meters import IntervalRecorder, LatencyMeter, ThroughputMeter
from .summary import Summary

__all__ = [
    "Summary",
    "EngineProfiler",
    "profiled",
    "FlowMonitor",
    "FlowStats",
    "Cdf",
    "ks_distance",
    "percentile",
    "ThroughputMeter",
    "IntervalRecorder",
    "LatencyMeter",
]
