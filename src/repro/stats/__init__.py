"""``repro.stats`` — measurement and distribution-comparison utilities."""

from .cdf import Cdf, ks_distance, percentile
from .flows import FlowMonitor, FlowStats
from .meters import IntervalRecorder, LatencyMeter, ThroughputMeter
from .summary import Summary

__all__ = [
    "Summary",
    "FlowMonitor",
    "FlowStats",
    "Cdf",
    "ks_distance",
    "percentile",
    "ThroughputMeter",
    "IntervalRecorder",
    "LatencyMeter",
]
