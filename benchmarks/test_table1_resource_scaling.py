"""T1 — perceived-resource scaling table (DESIGN.md: T1)."""

from conftest import regenerate


def test_table1_resource_scaling(benchmark):
    regenerate(benchmark, "table1")
