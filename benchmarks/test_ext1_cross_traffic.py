"""E1 — equivalence holds under competing cross traffic (DESIGN.md: E1)."""

from conftest import regenerate


def test_ext1_cross_traffic(benchmark):
    regenerate(benchmark, "ext1")
