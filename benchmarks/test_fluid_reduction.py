"""Hybrid-fidelity event-reduction benchmark — the fig3 grid, 20 s bulk.

Runs every fig3 RTT cell (100 Mbps, RTT 10..160 ms) as a bulk-dominated
20-second transfer once at ``fidelity="packet"`` and once at
``fidelity="hybrid"``, and records per-cell goodput error, engine-event
reduction and wall clock in ``BENCH_fluid.json`` at the repo root.

Hard gates:

* **aggregate event reduction >= 5x** across the grid (measured ~5.3x);
* per-cell goodput error within ``GOODPUT_GATES`` of the packet run.

The rtt10 cell gets a wider 8% gate than the 5% everywhere else because
the *packet baseline itself* is chaotic there: sweeping the base RTT
9.9 / 10.0 / 10.1 ms moves packet goodput 83.56 / 83.50 / 93.87 Mbps —
a +12.4% swing from a 1% perturbation. (Mechanism: with runt "mid"
segments maturing to full MSS at cwnd = 2*ssthresh, the flight's packet
count nearly doubles inside one RTT and whether the resulting overflow
resolves as clean SACK recovery or an RTO cascade is knife-edge.) The
hybrid engine's +6.3% residual on that cell sits well inside the
baseline's own sensitivity envelope, so a tighter gate would be testing
noise, not fidelity.

Wall-clock times are recorded for review but never asserted — the
reduction gate is a counting property and holds on any machine,
including the 1-CPU CI box.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bulk
from repro.simnet.units import mbps, ms

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_fluid.json"

#: Acceptance bar from the issue: engine events across the whole
#: bulk-dominated grid, packet / hybrid.
REQUIRED_REDUCTION = 5.0

#: Per-cell |goodput error| gates; rtt10 is wider for the reason in the
#: module docstring (the packet baseline's own chaos exceeds 5% there).
GOODPUT_GATES = {10: 0.08, 20: 0.05, 40: 0.05, 80: 0.05, 160: 0.05}

RTTS_MS = (10, 20, 40, 80, 160)
BANDWIDTH_MBPS = 100
DURATION_S = 20.0
WARMUP_S = 2.0


def _run(rtt_ms, fidelity):
    perceived = NetworkProfile.from_rtt(mbps(BANDWIDTH_MBPS), ms(rtt_ms))
    started = time.perf_counter()
    result = run_bulk(perceived, 1, duration_s=DURATION_S,
                      warmup_s=WARMUP_S, fidelity=fidelity)
    return result, time.perf_counter() - started


def test_fluid_event_reduction(bench_provenance):
    cells = []
    total_packet_events = 0
    total_hybrid_events = 0
    for rtt_ms in RTTS_MS:
        packet, packet_s = _run(rtt_ms, "packet")
        hybrid, hybrid_s = _run(rtt_ms, "hybrid")
        error = (hybrid.goodput_bps - packet.goodput_bps) / packet.goodput_bps
        reduction = packet.events_processed / hybrid.events_processed
        total_packet_events += packet.events_processed
        total_hybrid_events += hybrid.events_processed
        cells.append({
            "rtt_ms": rtt_ms,
            "packet_events": packet.events_processed,
            "hybrid_events": hybrid.events_processed,
            "reduction": round(reduction, 3),
            "packet_goodput_mbps": round(packet.goodput_bps / 1e6, 3),
            "hybrid_goodput_mbps": round(hybrid.goodput_bps / 1e6, 3),
            "goodput_error": round(error, 5),
            "goodput_gate": GOODPUT_GATES[rtt_ms],
            "packet_timeouts": packet.timeouts,
            "hybrid_timeouts": hybrid.timeouts,
            "packet_s": round(packet_s, 3),
            "hybrid_s": round(hybrid_s, 3),
        })

    aggregate = total_packet_events / total_hybrid_events
    record = {
        "bandwidth_mbps": BANDWIDTH_MBPS,
        "duration_s": DURATION_S,
        "warmup_s": WARMUP_S,
        "required_reduction": REQUIRED_REDUCTION,
        "aggregate_reduction": round(aggregate, 3),
        "cells": cells,
        # The reduction gate is a counting property, asserted everywhere.
        **bench_provenance(True),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    print()
    for cell in cells:
        print(f"rtt{cell['rtt_ms']:>3}: {cell['packet_events']:>9,} -> "
              f"{cell['hybrid_events']:>9,} events "
              f"({cell['reduction']:.1f}x), goodput err "
              f"{cell['goodput_error'] * 100:+.2f}% "
              f"(gate {cell['goodput_gate']:.0%})")
    print(f"aggregate reduction {aggregate:.2f}x "
          f"(required {REQUIRED_REDUCTION}x) -> {BENCH_JSON.name}")

    for cell in cells:
        gate = cell["goodput_gate"]
        assert abs(cell["goodput_error"]) <= gate, (
            f"rtt{cell['rtt_ms']}: hybrid goodput off by "
            f"{cell['goodput_error'] * 100:+.2f}% (gate {gate:.0%}); "
            f"see {BENCH_JSON}"
        )
    assert aggregate >= REQUIRED_REDUCTION, (
        f"hybrid engine only cut the bulk-dominated fig3 grid "
        f"{aggregate:.2f}x ({total_packet_events:,} -> "
        f"{total_hybrid_events:,} events); required "
        f"{REQUIRED_REDUCTION}x — see {BENCH_JSON}"
    )
