"""A2 — runtime TDF change re-scales perception live (DESIGN.md: A2)."""

from conftest import regenerate


def test_ablation_dynamic_tdf(benchmark):
    regenerate(benchmark, "ablation2")
