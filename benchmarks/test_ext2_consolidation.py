"""E2 — multiple dilated guests multiplexed on one machine (DESIGN.md: E2)."""

from conftest import regenerate


def test_ext2_consolidation(benchmark):
    regenerate(benchmark, "ext2")
