"""E3 — mixed-resource guest program, phase-by-phase (DESIGN.md: E3)."""

from conftest import regenerate


def test_ext3_guest_program(benchmark):
    regenerate(benchmark, "ext3")
