"""F9 — BitTorrent download-time CDF (DESIGN.md: F9)."""

from conftest import regenerate


def test_fig9_bittorrent_cdf(benchmark):
    regenerate(benchmark, "fig9")
