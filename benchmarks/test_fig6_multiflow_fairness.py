"""F6 — multi-flow bottleneck sharing under dilation (DESIGN.md: F6)."""

from conftest import regenerate


def test_fig6_multiflow_fairness(benchmark):
    regenerate(benchmark, "fig6")
