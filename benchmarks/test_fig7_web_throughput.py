"""F7 — web server throughput vs offered load (DESIGN.md: F7)."""

from conftest import regenerate


def test_fig7_web_throughput(benchmark):
    regenerate(benchmark, "fig7")
