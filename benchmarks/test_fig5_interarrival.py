"""F5 — packet interarrival distribution under dilation (DESIGN.md: F5)."""

from conftest import regenerate


def test_fig5_interarrival(benchmark):
    regenerate(benchmark, "fig5")
