"""Swarm-scale benchmark: events/sec and wall-clock per swarm size.

Two halves, both landing in ``BENCH_swarm.json`` at the repo root:

* **End-to-end pins** — the real ``run_bittorrent`` macro-benchmark at
  25/100/250 leechers, recording wall-clock, engine events, and
  events/sec per swarm size, plus the assertion that every leecher
  completes (the seed code hung or stranded leechers at ≥25).

* **Hot-path gate** — the per-message peer machinery (rarest-first
  selection, interest tracking, Have handling, choke ranking) driven
  through an *identical* scripted message storm against (a) a faithful
  embedded copy of the seed peer's hot paths and (b) the live peer with
  its incremental availability/interest indexes. The seed code rebuilt an
  O(connections x pieces) availability dict on nearly every message; at
  100+ connections the acceptance bar is **2x** ops/sec, and the measured
  gap is far larger. A port-allocation micro rides along: the seed
  ``allocate_port`` scanned the demux table per call.

The legacy classes below are faithful copies of the seed hot paths
(docstrings trimmed) so the comparison never drifts as the live code
evolves.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Dict, List

from repro.apps.bittorrent.messages import (
    Bitfield,
    Have,
    PieceData,
    Unchoke,
)
from repro.apps.bittorrent.metainfo import TorrentMeta
from repro.apps.bittorrent.peer import Peer
from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bittorrent
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.tcp.stack import EPHEMERAL_BASE, TcpStack
from repro.udp.socket import UdpStack

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_swarm.json"

#: Acceptance bar: the reworked hot paths must clear 2x the seed peer's
#: ops/sec on the same message storm at 100+ connections.
REQUIRED_SPEEDUP = 2.0

#: End-to-end sweep: (leechers, file_bytes, piece_bytes) — the ext5 rows.
SWARM_SIZES = [
    (25, 2 << 20, 65536),
    (100, 1 << 20, 65536),
    (250, 512 * 1024, 32768),
]

#: Hot-path shapes: connection fan-in of a node inside a 100- and a
#: 250-leecher swarm (the seed peer had no connection cap).
HOT_PATH_SHAPES = [(100, 64), (250, 64)]
ROUNDS = 2  # best-of-N to shrug off scheduler noise


def _update_bench(section: str, payload: Dict, provenance: Dict) -> None:
    record = {}
    if BENCH_JSON.exists():
        record = json.loads(BENCH_JSON.read_text())
    record[section] = payload
    record["required_speedup"] = REQUIRED_SPEEDUP
    # Every hot-path bar here is a single-process property, asserted on
    # every machine — the stamp says what box produced the numbers.
    record.update(provenance)
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")


# --------------------------------------------------------------------------
# End-to-end pins: the real macro-benchmark per swarm size.
# --------------------------------------------------------------------------


def test_swarm_end_to_end_pins(bench_provenance):
    profile = NetworkProfile.from_rtt(mbps(10), ms(20))
    payload = {}
    print()
    for leechers, file_bytes, piece_bytes in SWARM_SIZES:
        start = time.perf_counter()
        result = run_bittorrent(
            profile, 1, leechers=leechers, file_bytes=file_bytes,
            seed=4242, piece_bytes=piece_bytes,
        )
        wall = time.perf_counter() - start
        rate = result.events_processed / wall
        payload[str(leechers)] = {
            "file_bytes": file_bytes,
            "wall_s": round(wall, 3),
            "events": result.events_processed,
            "events_per_sec": round(rate),
            "completed": result.completed,
            "tracker_announces": result.tracker_announces,
            "connections_total": result.connections_total,
        }
        print(f"n={leechers:4d}: {wall:6.1f} s wall, "
              f"{result.events_processed:,} events, {rate:,.0f} ev/s, "
              f"{result.completed}/{leechers} complete")
        assert result.completed == leechers, (
            f"{leechers - result.completed} leechers stranded at "
            f"swarm size {leechers}"
        )
    _update_bench("end_to_end", payload, bench_provenance(True))


# --------------------------------------------------------------------------
# The seed peer's hot paths, embedded so the comparison never drifts.
# --------------------------------------------------------------------------


class LegacyPeer(Peer):
    """The seed's message/selection/choking hot paths, verbatim."""

    def _on_message(self, sock, message):
        connection = self._by_socket.get(id(sock))
        if connection is None:
            return
        if isinstance(message, Bitfield):
            connection.remote_have |= set(message.have)
            self._update_interest(connection)
        elif isinstance(message, Have):
            connection.remote_have.add(message.piece)
            self._update_interest(connection)
            self._fill_pipeline(connection)
        elif isinstance(message, Unchoke):
            connection.peer_choking = False
            self._fill_pipeline(connection)
        elif isinstance(message, PieceData):
            self._on_piece(connection, message)
        else:
            super()._on_message(sock, message)

    def _on_piece(self, connection, message):
        connection.outstanding.discard(message.piece)
        connection.downloaded_window += message.length
        self.bytes_downloaded += message.length
        self._unpend(message.piece)
        if message.piece in self.have:
            return
        self.have.add(message.piece)
        for other in self._connections:
            self._send(other, Have(piece=message.piece))
        if self.complete and self.completed_at is None:
            self.completed_at = self.node.clock.now()
            if self.on_complete is not None:
                self.on_complete(self)
        self._update_all_interest()
        self._fill_pipeline(connection)

    def _needed_from(self, connection):
        return [
            piece for piece in connection.remote_have
            if piece not in self.have and piece not in self._pending
        ]

    def _update_interest(self, connection):
        interesting = any(
            piece not in self.have for piece in connection.remote_have
        )
        if interesting and not connection.am_interested:
            connection.am_interested = True
            self._send(connection, Interested_legacy)
        elif not interesting and connection.am_interested:
            connection.am_interested = False
            self._send(connection, NotInterested_legacy)

    def _update_all_interest(self):
        for connection in self._connections:
            self._update_interest(connection)

    def _availability(self):
        counts = {}
        for connection in self._connections:
            for piece in connection.remote_have:
                counts[piece] = counts.get(piece, 0) + 1
        return counts

    def _fill_pipeline(self, connection):
        if connection.peer_choking:
            return
        counts = self._availability()
        while len(connection.outstanding) < self.config.request_pipeline:
            candidates = self._needed_from(connection)
            if not candidates:
                return
            rarest = min(counts.get(piece, 1) for piece in candidates)
            pool = [p for p in candidates if counts.get(p, 1) == rarest]
            piece = self.rng.choice(pool)
            self._request(connection, piece)

    def _choke_round(self, round_index):
        self._choke_rounds += 1
        self._retry_stalled()
        interested = [c for c in self._connections if c.peer_interested]
        if self.complete:
            interested.sort(
                key=lambda c: (-c.uploaded_window, c.remote_name or ""))
        else:
            interested.sort(
                key=lambda c: (-c.downloaded_window, c.remote_name or ""))
        regular = interested[: max(0, self.config.upload_slots - 1)]
        unchoke = set(regular)
        rotate = (self._choke_rounds %
                  self.config.optimistic_every_rounds) == 1
        if rotate or self._optimistic not in self._connections:
            choked_pool = [c for c in interested if c not in unchoke]
            self._optimistic = (
                self.rng.choice(choked_pool) if choked_pool else None)
        if self._optimistic is not None:
            unchoke.add(self._optimistic)
        for connection in self._connections:
            should_unchoke = connection in unchoke
            if should_unchoke and connection.am_choking:
                connection.am_choking = False
                self._send(connection, Unchoke_legacy)
            elif not should_unchoke and not connection.am_choking:
                connection.am_choking = True
                self._send(connection, Choke_legacy)
            connection.downloaded_window = 0
            connection.uploaded_window = 0


class _Marker:
    """Stands in for control messages the stub socket just counts."""

    wire_bytes = 5


Interested_legacy = _Marker()
NotInterested_legacy = _Marker()
Unchoke_legacy = _Marker()
Choke_legacy = _Marker()


class _StubSocket:
    """An established socket that swallows sends — the benchmark measures
    peer bookkeeping, not the TCP substrate."""

    __slots__ = ("state", "remote_addr", "sent")

    def __init__(self, remote_addr):
        self.state = "ESTABLISHED"
        self.remote_addr = remote_addr
        self.sent = 0

    def send(self, size_bytes, message=None):
        self.sent += 1


# --------------------------------------------------------------------------
# The scripted message storm: identical for both peers.
# --------------------------------------------------------------------------


def _build_script(conns: int, pieces: int) -> List:
    """One deterministic storm: bitfields, unchokes, Have chatter, and one
    PieceData per piece (delivered to whichever neighbour holds the
    pending request — resolved at replay time, identically for both
    sides since the delivery count per phase is fixed)."""
    script = []
    for j in range(conns):
        script.append(("bitfield", j))
    for j in range(0, conns, 2):
        script.append(("interested", j))
    for j in range(conns):
        script.append(("unchoke", j))
    for piece in range(pieces):
        # Rotating Have chatter between piece arrivals: the messages that
        # made the seed peer rebuild its availability dict over and over.
        for k in range(8):
            script.append(("have", (piece * 7 + k * 11) % conns,
                           (piece + k) % pieces))
        script.append(("piece", piece))
        if piece % 8 == 7:
            script.append(("choke_round",))
    return script


def _drive(peer_cls, conns: int, pieces: int):
    net = Network()
    node = net.add_node("bench")
    net.finalize()
    meta = TorrentMeta(name="bench.torrent", total_bytes=pieces * 16384,
                       piece_size=16384)
    peer = peer_cls(
        tcp=TcpStack(node),
        udp=UdpStack(node),
        meta=meta,
        tracker_addr="tracker",
        rng=random.Random(7),
    )
    sockets = []
    full = frozenset(range(pieces))
    for j in range(conns):
        sock = _StubSocket(f"n{j}")
        connection = peer._register(sock)
        connection.remote_name = sock.remote_addr
        sockets.append(sock)
    script = _build_script(conns, pieces)
    ops = 0
    start = time.perf_counter()
    for op in script:
        ops += 1
        kind = op[0]
        if kind == "bitfield":
            peer._on_message(sockets[op[1]],
                             Bitfield(have=full, num_pieces=pieces))
        elif kind == "interested":
            peer._connections[op[1]].peer_interested = True
        elif kind == "unchoke":
            peer._on_message(sockets[op[1]], Unchoke())
        elif kind == "have":
            peer._on_message(sockets[op[1]], Have(piece=op[2]))
        elif kind == "piece":
            holder = peer._pending.get(op[1])
            sock = holder.socket if holder is not None else sockets[0]
            peer._on_message(
                sock, PieceData(piece=op[1],
                                length=meta.piece_length(op[1])))
        elif kind == "choke_round":
            peer._choke_round(0)
    elapsed = time.perf_counter() - start
    assert peer.complete, f"{peer_cls.__name__} did not finish the storm"
    return ops, elapsed


def _best_rate(peer_cls, conns, pieces, rounds=ROUNDS):
    best = 0.0
    for _ in range(rounds):
        ops, elapsed = _drive(peer_cls, conns, pieces)
        best = max(best, ops / elapsed)
    return best


def test_hot_path_speedup(bench_provenance):
    payload = {}
    print()
    for conns, pieces in HOT_PATH_SHAPES:
        legacy_rate = _best_rate(LegacyPeer, conns, pieces)
        fast_rate = _best_rate(Peer, conns, pieces)
        speedup = fast_rate / legacy_rate
        payload[f"conns{conns}"] = {
            "pieces": pieces,
            "legacy_ops_per_sec": round(legacy_rate),
            "fast_ops_per_sec": round(fast_rate),
            "speedup": round(speedup, 2),
        }
        print(f"conns={conns:4d}: legacy {legacy_rate:,.0f} ops/s, "
              f"fast {fast_rate:,.0f} ops/s -> {speedup:.1f}x")
        assert speedup >= REQUIRED_SPEEDUP, (
            f"peer hot paths only {speedup:.2f}x the seed at "
            f"{conns} connections (required {REQUIRED_SPEEDUP}x)"
        )
    _update_bench("peer_hot_paths", payload, bench_provenance(True))


# --------------------------------------------------------------------------
# Port allocation: the seed scanned the demux table per allocate.
# --------------------------------------------------------------------------


def _legacy_allocate_port(stack: TcpStack) -> int:
    """The seed's allocate_port: O(connections) scan per call."""
    for _ in range(65536 - EPHEMERAL_BASE):
        port = stack._next_ephemeral
        stack._next_ephemeral += 1
        if stack._next_ephemeral >= 65536:
            stack._next_ephemeral = EPHEMERAL_BASE
        if port not in stack._listeners and not any(
            key[0] == port for key in stack._connections
        ):
            return port
    raise RuntimeError("exhausted")


def _allocation_rate(allocate, conns=250, allocations=2000):
    net = Network()
    node = net.add_node("bench")
    net.finalize()
    stack = TcpStack(node)
    for index in range(conns):
        stack._bind_connection((EPHEMERAL_BASE + index, f"peer{index}", 6881),
                               object())
    stack._next_ephemeral = EPHEMERAL_BASE + conns
    start = time.perf_counter()
    for _ in range(allocations):
        allocate(stack)
    return allocations / (time.perf_counter() - start)


def test_port_allocation_speedup(bench_provenance):
    legacy_rate = max(_allocation_rate(_legacy_allocate_port)
                      for _ in range(ROUNDS))
    fast_rate = max(_allocation_rate(lambda s: s.allocate_port())
                    for _ in range(ROUNDS))
    speedup = fast_rate / legacy_rate
    print(f"\nallocate_port: legacy {legacy_rate:,.0f}/s, "
          f"fast {fast_rate:,.0f}/s -> {speedup:.1f}x")
    _update_bench("allocate_port", {
        "connections": 250,
        "legacy_allocs_per_sec": round(legacy_rate),
        "fast_allocs_per_sec": round(fast_rate),
        "speedup": round(speedup, 2),
    }, bench_provenance(True))
    assert speedup >= REQUIRED_SPEEDUP
