"""F8 — web response time vs offered load (DESIGN.md: F8)."""

from conftest import regenerate


def test_fig8_web_response_time(benchmark):
    regenerate(benchmark, "fig8")
