"""F4 — TCP throughput vs bottleneck bandwidth (DESIGN.md: F4)."""

from conftest import regenerate


def test_fig4_throughput_vs_bandwidth(benchmark):
    regenerate(benchmark, "fig4")
