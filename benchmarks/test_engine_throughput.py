"""Engine events/sec microbenchmark — fast path vs the seed engine.

Timer churn is the event engine's worst case and TCP's steady state: every
segment re-arms the retransmission timer, every delivery re-arms the
delayed-ACK timer, and the persist timer rides along — three cancel/re-arm
cycles per packet event. The seed engine paid for each re-arm with a fresh
``Event`` allocation, a fresh closure, and a heap push into a heap bloated
by every previously cancelled entry (lazy deletion never reclaimed them
until they surfaced). The fast path re-keys the existing ``Event`` in
place (:meth:`Event.reschedule`), recycles fire-and-forget packet events
through a pool (:meth:`Simulator.schedule_transient`), and compacts the
heap when dead entries outnumber live ones.

This benchmark drives both engines through the *identical* logical
workload — N flows, one packet event per ms per flow, three timer re-arms
per packet — and asserts the fast path clears the acceptance bar of
**1.5x** the seed engine's events/sec. Results land in
``BENCH_engine.json`` at the repo root so regressions show up in review.

The legacy engine below is a faithful copy of the seed's
``repro/simnet/engine.py`` hot path (docstrings trimmed), including its
per-event-lambda scheduling idiom from the seed's ``nic.py``
(``sim.schedule(tx, lambda: self._finish_transmit(pkt))``).
"""

from __future__ import annotations

import heapq
import itertools
import json
import time
from pathlib import Path

from repro.simnet.engine import Simulator

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

#: Acceptance bar from the issue: fast path must deliver >= 1.5x the seed
#: engine's events/sec on this workload.
REQUIRED_SPEEDUP = 1.5

FLOWS = 100
PACKET_GAP_S = 0.001
RTO_S = 0.2
DELACK_S = 0.04
PERSIST_S = 0.5
DURATION_S = 4.0
ROUNDS = 2  # best-of-N to shrug off scheduler noise


# --------------------------------------------------------------------------
# The seed engine, embedded so the comparison never drifts as the live
# engine evolves.
# --------------------------------------------------------------------------


class LegacyEvent:
    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time, seq, fn):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class LegacySimulator:
    """The seed's engine: lazy deletion, no reschedule, no pooling."""

    def __init__(self):
        self._now = 0.0
        self._queue = []
        self._seq = itertools.count()
        self.events_processed = 0

    @property
    def now(self):
        return self._now

    def schedule(self, delay, fn):
        return self.call_at(self._now + delay, fn)

    def call_at(self, time, fn):
        event = LegacyEvent(time, next(self._seq), fn)
        heapq.heappush(self._queue, (time, event.seq, event))
        return event

    def run(self, until=None):
        while self._queue:
            time_, _, event = self._queue[0]
            if until is not None and time_ > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = time_
            event.fn()
            self.events_processed += 1


# --------------------------------------------------------------------------
# The workload: per-flow packet clock, three timer re-arms per packet.
# --------------------------------------------------------------------------


class _Flow:
    __slots__ = ("rto", "delack", "persist")


def _drive_legacy():
    """Seed idiom: cancel + schedule a fresh lambda for every re-arm."""
    sim = LegacySimulator()

    def on_timer(flow):
        pass

    def on_packet(flow):
        flow.rto.cancel()
        flow.rto = sim.schedule(RTO_S, lambda: on_timer(flow))
        flow.delack.cancel()
        flow.delack = sim.schedule(DELACK_S, lambda: on_timer(flow))
        flow.persist.cancel()
        flow.persist = sim.schedule(PERSIST_S, lambda: on_timer(flow))
        sim.schedule(PACKET_GAP_S, lambda: on_packet(flow))

    for index in range(FLOWS):
        flow = _Flow()
        flow.rto = sim.schedule(RTO_S, lambda f=flow: on_timer(f))
        flow.delack = sim.schedule(DELACK_S, lambda f=flow: on_timer(f))
        flow.persist = sim.schedule(PERSIST_S, lambda f=flow: on_timer(f))
        sim.schedule(index * PACKET_GAP_S / FLOWS, lambda f=flow: on_packet(f))

    start = time.perf_counter()
    sim.run(until=DURATION_S)
    elapsed = time.perf_counter() - start
    return sim.events_processed, elapsed, {"heap_len": len(sim._queue)}


def _drive_fast():
    """Fast path: reschedule() re-arms, schedule_transient() packet chain."""
    sim = Simulator()

    def on_timer(flow):
        pass

    def on_packet(flow):
        now = sim.now
        flow.rto.reschedule(now + RTO_S)
        flow.delack.reschedule(now + DELACK_S)
        flow.persist.reschedule(now + PERSIST_S)
        sim.schedule_transient(PACKET_GAP_S, on_packet, flow)

    for index in range(FLOWS):
        flow = _Flow()
        flow.rto = sim.schedule(RTO_S, on_timer, flow)
        flow.delack = sim.schedule(DELACK_S, on_timer, flow)
        flow.persist = sim.schedule(PERSIST_S, on_timer, flow)
        sim.schedule_transient(index * PACKET_GAP_S / FLOWS, on_packet, flow)

    start = time.perf_counter()
    sim.run(until=DURATION_S)
    elapsed = time.perf_counter() - start
    stats = {
        "heap_len": sim.heap_len(),
        "max_heap_len": sim.max_heap_len,
        "compactions": sim.compactions,
        "dead_entries_reaped": sim.dead_entries_reaped,
    }
    return sim.events_processed, elapsed, stats


def _best_of(driver, rounds=ROUNDS):
    best_rate, events, stats = 0.0, 0, {}
    for _ in range(rounds):
        n, elapsed, round_stats = driver()
        rate = n / elapsed
        if rate > best_rate:
            best_rate, events, stats = rate, n, round_stats
    return events, best_rate, stats


def test_timer_churn_speedup(bench_provenance):
    legacy_events, legacy_rate, legacy_stats = _best_of(_drive_legacy)
    fast_events, fast_rate, fast_stats = _best_of(_drive_fast)

    # Fairness: both engines must execute the identical logical workload.
    assert fast_events == legacy_events, (
        f"workloads diverged: fast={fast_events} legacy={legacy_events}"
    )

    speedup = fast_rate / legacy_rate
    record = {
        "workload": {
            "flows": FLOWS,
            "packet_gap_s": PACKET_GAP_S,
            "timers_per_packet": 3,
            "duration_s": DURATION_S,
            "events": fast_events,
        },
        "legacy": {
            "events_per_sec": round(legacy_rate),
            **legacy_stats,
        },
        "fast": {
            "events_per_sec": round(fast_rate),
            **fast_stats,
        },
        "speedup": round(speedup, 3),
        "required_speedup": REQUIRED_SPEEDUP,
        # The bar is a single-process property, asserted on every machine.
        **bench_provenance(True),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(f"legacy: {legacy_rate:,.0f} ev/s  (final heap "
          f"{legacy_stats['heap_len']:,} entries)")
    print(f"fast:   {fast_rate:,.0f} ev/s  (final heap "
          f"{fast_stats['heap_len']:,} entries, "
          f"{fast_stats['compactions']} compactions)")
    print(f"speedup: {speedup:.2f}x (required {REQUIRED_SPEEDUP}x) "
          f"-> {BENCH_JSON.name}")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"fast path is only {speedup:.2f}x the seed engine "
        f"(required {REQUIRED_SPEEDUP}x); see {BENCH_JSON}"
    )


def test_fast_engine_keeps_heap_compacted():
    """The fast engine's heap must stay O(live), not O(cancellations)."""
    _, _, stats = _best_of(_drive_fast, rounds=1)
    live = 4 * FLOWS  # 3 timers + 1 packet event per flow
    assert stats["max_heap_len"] < 20 * live, stats
    assert stats["compactions"] > 0


def test_recorder_default_off_is_free_and_nonperturbing():
    """The flight recorder's overhead contract, pinned on the engine.

    Default-off: a fresh engine has no recorder bound, so the hot loop's
    only cost is the one is-None check — and this benchmark's numbers are
    measured on exactly that path. Attached: recording is append-only, so
    the executed-event count (the determinism fingerprint) is unchanged
    and the recorder sees one event per execution.
    """
    from repro.trace.recorder import FlightRecorder

    def drive(recorder=None):
        sim = Simulator()
        assert sim._recorder is None  # default-off
        if recorder is not None:
            recorder.attach_engine(sim)

        def tick(depth):
            if depth:
                sim.schedule_transient(0.001, tick, depth - 1)

        for index in range(20):
            sim.schedule(index * 0.0001, tick, 50)
        sim.run()
        return sim.events_processed

    plain = drive()
    recorder = FlightRecorder(capacity=None)
    recorded = drive(recorder)
    assert plain == recorded > 0
    assert recorder.recorded == recorded
    assert all(e.category == "timer" for e in recorder)
