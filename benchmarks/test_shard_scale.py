"""Sharded-engine throughput benchmark — 2-way split of the 250-peer swarm.

Runs the largest ext5 swarm (250 leechers, 512 KiB file) once on the
single-process engine, once split across two shard workers, and once more
sharded with window batching disabled (``REPRO_SHARD_WINDOW_BATCH=1``,
the PR 6 one-window-per-round engine), and records wall clock, per-shard
event counts, barrier round/window counts and blocked time in
``BENCH_shard.json`` at the repo root.

Correctness is asserted at the strongest tier: with the determinism
``delay_salt`` the sharded swarm is **event-for-event identical** to the
single-process run at every size — the engine's tie-rank channel lets
injected cross-shard deliveries claim their original creation instant
against bit-equal-timestamp periodic timers, which closed the +169-event
drift this benchmark used to tolerate. ``events_identical`` and
``downloads_identical`` are now hard gates, not advisory json fields.

The batching bar — rounds must drop **>= 3x** against the unbatched
engine — is a counting property and is asserted on any machine. The
speedup bar — **>= 1.7x** events/sec at 2 shards — is asserted only when
the machine has >= ``MIN_CORES_FOR_BAR`` cores (``cpu_count`` fixture);
on smaller boxes the json records ``speedup_asserted: false`` and the
measured (possibly < 1x) ratio for review.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bittorrent
from repro.simnet.units import mbps, ms

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_shard.json"

#: Acceptance bar from the issue, asserted on >= MIN_CORES_FOR_BAR cores.
REQUIRED_SPEEDUP = 1.7
MIN_CORES_FOR_BAR = 4

#: Window-batching bar: full barrier rounds vs the one-window-per-round
#: engine. Counting property — asserted regardless of cores.
REQUIRED_ROUNDS_DROP = 3.0

#: The heaviest ext5 row: 250 leechers, 512 KiB file, 32 KiB pieces.
LEECHERS = 250
FILE_BYTES = 512 * 1024
PIECE_BYTES = 32768
SHARDS = 2
DELAY_SALT = 1e-6


def _run(shards, window_batch=None):
    profile = NetworkProfile.from_rtt(mbps(10), ms(20))
    if window_batch is not None:
        os.environ["REPRO_SHARD_WINDOW_BATCH"] = str(window_batch)
    try:
        started = time.perf_counter()
        result = run_bittorrent(
            profile, 1, leechers=LEECHERS, file_bytes=FILE_BYTES,
            seed=4242, piece_bytes=PIECE_BYTES, delay_salt=DELAY_SALT,
            shards=shards,
        )
    finally:
        if window_batch is not None:
            del os.environ["REPRO_SHARD_WINDOW_BATCH"]
    return result, time.perf_counter() - started


def test_shard_scale_speedup(cpu_count):
    single, single_s = _run(1)
    sharded, sharded_s = _run(SHARDS)
    unbatched, unbatched_s = _run(SHARDS, window_batch=1)
    single_rate = single.events_processed / single_s
    sharded_rate = sharded.events_processed / sharded_s
    speedup = sharded_rate / single_rate if single_rate > 0 else 0.0

    events_delta = sharded.events_processed - single.events_processed
    mean_single = sum(single.download_times_s) / len(single.download_times_s)
    mean_sharded = (
        sum(sharded.download_times_s) / len(sharded.download_times_s)
    )
    rounds = sharded.shard_stats[0]["rounds"]
    unbatched_rounds = unbatched.shard_stats[0]["rounds"]
    rounds_drop = unbatched_rounds / rounds if rounds else 0.0

    record = {
        "leechers": LEECHERS,
        "file_bytes": FILE_BYTES,
        "shards": SHARDS,
        "delay_salt": DELAY_SALT,
        "cpu_count": cpu_count,
        "single_s": round(single_s, 3),
        "sharded_s": round(sharded_s, 3),
        "unbatched_sharded_s": round(unbatched_s, 3),
        "events": single.events_processed,
        "events_delta": events_delta,
        "events_identical": events_delta == 0,
        "downloads_identical": (
            sharded.download_times_s == single.download_times_s
        ),
        "mean_download_s": round(mean_single, 3),
        "single_events_per_sec": round(single_rate),
        "sharded_events_per_sec": round(sharded_rate),
        "speedup": round(speedup, 3),
        "required_speedup": REQUIRED_SPEEDUP,
        "speedup_asserted": cpu_count >= MIN_CORES_FOR_BAR,
        "rounds": rounds,
        "unbatched_rounds": unbatched_rounds,
        "rounds_drop": round(rounds_drop, 2),
        "required_rounds_drop": REQUIRED_ROUNDS_DROP,
        "shard_stats": sharded.shard_stats,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(f"n={LEECHERS}: single {single_s:.1f} s "
          f"({single_rate:,.0f} ev/s), {SHARDS} shards {sharded_s:.1f} s "
          f"({sharded_rate:,.0f} ev/s) -> {speedup:.2f}x "
          f"({cpu_count} core(s)); rounds {unbatched_rounds} -> {rounds} "
          f"({rounds_drop:.1f}x) -> {BENCH_JSON.name}")

    # Event-for-event identity on any machine: the salted sharded swarm
    # is the single-process swarm, bit for bit, and the unbatched engine
    # agrees with both (window boundaries cannot move events).
    assert single.completed == LEECHERS
    assert sharded.completed == LEECHERS
    assert sum(s["events_processed"] for s in sharded.shard_stats) == (
        sharded.events_processed
    )
    assert events_delta == 0, (
        f"sharded swarm drifted {events_delta:+d} events from the "
        "single-process engine; the tie-rank channel should make this 0"
    )
    assert sharded.download_times_s == single.download_times_s
    assert unbatched.events_processed == single.events_processed
    assert unbatched.download_times_s == single.download_times_s
    assert mean_sharded == mean_single

    assert rounds_drop >= REQUIRED_ROUNDS_DROP, (
        f"window batching only cut barrier rounds {rounds_drop:.2f}x "
        f"({unbatched_rounds} -> {rounds}); required "
        f"{REQUIRED_ROUNDS_DROP}x — see {BENCH_JSON}"
    )

    if cpu_count >= MIN_CORES_FOR_BAR:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"2-shard swarm is only {speedup:.2f}x the single-process "
            f"engine on {cpu_count} cores (required {REQUIRED_SPEEDUP}x); "
            f"see {BENCH_JSON}"
        )
