"""Sharded-engine throughput benchmark — 2-way split of the 250-peer swarm.

Runs the largest ext5 swarm (250 leechers, 512 KiB file) once on the
single-process engine and once split across two shard workers, and
records wall clock, per-shard event counts, barrier round counts and
blocked time in ``BENCH_shard.json`` at the repo root.

Correctness asserts are calibrated to what the sharded engine actually
guarantees at this scale. With the determinism ``delay_salt`` the
sharded swarm is event-for-event identical to the single-process run
up through ~25 leechers (pinned by the flight-recorder diff in
``tests/parallel/test_shard_equivalence.py``); beyond that, same-float
timer-vs-arrival ties can still resolve differently (periodic timers
land on bit-equal old arrival times, and a staged cross-shard delivery
is re-created at its injection window, shifting its creation order
relative to timers armed earlier), so the big swarm is checked as
aggregate-equivalent: every leecher completes, every event is accounted
to exactly one shard, totals agree within a small bounded drift
(measured 0.008% at 250 leechers), and mean download time agrees
closely. The json records ``events_identical`` / ``downloads_identical``
so CI history shows when a run happens to be exact.

The speedup bar — **>= 1.7x** events/sec at 2 shards — is asserted only
when the machine has >= ``MIN_CORES_FOR_BAR`` cores (``cpu_count``
fixture); on smaller boxes the json records ``speedup_asserted: false``
and the measured (possibly < 1x) ratio for review.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bittorrent
from repro.simnet.units import mbps, ms

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_shard.json"

#: Acceptance bar from the issue, asserted on >= MIN_CORES_FOR_BAR cores.
REQUIRED_SPEEDUP = 1.7
MIN_CORES_FOR_BAR = 4

#: Event totals may drift by same-float timer ties at this scale;
#: measured drift is ~1e-4 relative, so 1% is a loose-but-real bound.
MAX_EVENTS_DRIFT = 0.01
#: Individual download times can shift by a few tie-resolved seconds,
#: but the mean over 250 peers must stay put.
MAX_MEAN_DOWNLOAD_DRIFT = 0.05

#: The heaviest ext5 row: 250 leechers, 512 KiB file, 32 KiB pieces.
LEECHERS = 250
FILE_BYTES = 512 * 1024
PIECE_BYTES = 32768
SHARDS = 2
DELAY_SALT = 1e-6


def _run(shards):
    profile = NetworkProfile.from_rtt(mbps(10), ms(20))
    started = time.perf_counter()
    result = run_bittorrent(
        profile, 1, leechers=LEECHERS, file_bytes=FILE_BYTES,
        seed=4242, piece_bytes=PIECE_BYTES, delay_salt=DELAY_SALT,
        shards=shards,
    )
    return result, time.perf_counter() - started


def test_shard_scale_speedup(cpu_count):
    single, single_s = _run(1)
    sharded, sharded_s = _run(SHARDS)
    single_rate = single.events_processed / single_s
    sharded_rate = sharded.events_processed / sharded_s
    speedup = sharded_rate / single_rate if single_rate > 0 else 0.0

    events_delta = sharded.events_processed - single.events_processed
    mean_single = sum(single.download_times_s) / len(single.download_times_s)
    mean_sharded = (
        sum(sharded.download_times_s) / len(sharded.download_times_s)
    )

    record = {
        "leechers": LEECHERS,
        "file_bytes": FILE_BYTES,
        "shards": SHARDS,
        "delay_salt": DELAY_SALT,
        "cpu_count": cpu_count,
        "single_s": round(single_s, 3),
        "sharded_s": round(sharded_s, 3),
        "events": single.events_processed,
        "events_delta": events_delta,
        "events_identical": events_delta == 0,
        "downloads_identical": (
            sharded.download_times_s == single.download_times_s
        ),
        "mean_download_s": round(mean_single, 3),
        "mean_download_sharded_s": round(mean_sharded, 3),
        "single_events_per_sec": round(single_rate),
        "sharded_events_per_sec": round(sharded_rate),
        "speedup": round(speedup, 3),
        "required_speedup": REQUIRED_SPEEDUP,
        "speedup_asserted": cpu_count >= MIN_CORES_FOR_BAR,
        "shard_stats": sharded.shard_stats,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(f"n={LEECHERS}: single {single_s:.1f} s "
          f"({single_rate:,.0f} ev/s), {SHARDS} shards {sharded_s:.1f} s "
          f"({sharded_rate:,.0f} ev/s) -> {speedup:.2f}x "
          f"({cpu_count} core(s), events delta {events_delta:+d}) "
          f"-> {BENCH_JSON.name}")

    # Aggregate equivalence on any machine: a completed swarm on both
    # engines, every event accounted to exactly one shard, totals within
    # the tie-drift bound, and the mean download time unchanged.
    assert single.completed == LEECHERS
    assert sharded.completed == LEECHERS
    assert sum(s["events_processed"] for s in sharded.shard_stats) == (
        sharded.events_processed
    )
    assert abs(events_delta) <= MAX_EVENTS_DRIFT * single.events_processed
    assert abs(mean_sharded - mean_single) <= (
        MAX_MEAN_DOWNLOAD_DRIFT * mean_single
    )

    if cpu_count >= MIN_CORES_FOR_BAR:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"2-shard swarm is only {speedup:.2f}x the single-process "
            f"engine on {cpu_count} cores (required {REQUIRED_SPEEDUP}x); "
            f"see {BENCH_JSON}"
        )
