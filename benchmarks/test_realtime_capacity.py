"""Real-time capacity benchmark — max sustainable event load vs TDF.

The paper's figure-3 story says: dilate time by k and the emulator can
present k times the apparent bandwidth. This benchmark runs that story in
reverse for the real-time driver: at TDF k the engine has k times the
wall time per virtual second, so the maximum *virtual* event load it can
pace without blowing deadlines should grow with k.

For each TDF a ladder of CBR rates (one UDP datagram stream over one
fast link, scheduled in a dilated guest clock) is probed under the
wall-clock driver with a fixed wall budget per probe. A rate is
*sustainable* when the deadline-miss rate stays under
``MISS_RATE_CEILING`` with misses defined as slip beyond
``MISS_THRESHOLD_S``. The ladder stops at the first unsustainable rung;
the highest sustainable rung is the recorded capacity. Everything lands
in ``BENCH_realtime.json`` at the repo root, alongside a fig3-profile
bulk-TCP run at TDF 10 (the acceptance point from the issue).

Hard gate: capacity at the highest TDF must be >= capacity at TDF 1 —
*asserted only when* the TDF 1 ladder actually found its ceiling below
the top rung and the runner was not saturated (``busy_frac`` gate);
``speedup_asserted`` in the json says which happened. Wall-clock pacing
quality is load-sensitive, so like the other parallelism benchmarks the
correctness shape always runs but the headline bar self-gates.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.apps.crosstraffic import CbrSource, UdpSink
from repro.core.dilation import NetworkProfile
from repro.core.tdf import as_tdf
from repro.core.vmm import Hypervisor
from repro.harness.experiments import run_bulk
from repro.realtime.driver import RealtimeConfig, RealtimeDriver
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.udp.socket import UdpStack

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_realtime.json"

#: TDF sweep for the capacity table.
TDFS = (1, 5, 10, 20)

#: Virtual packets/sec ladder, ascending; each datagram costs a handful
#: of engine events (timer, enqueue, transmit-complete, deliver).
PPS_LADDER = (500, 1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000,
              256000, 512000, 1024000, 2048000)

#: Wall seconds spent per probe rung (virtual span = budget / TDF).
WALL_BUDGET_S = 0.3

#: A batch is a miss when its slip exceeds this. Set well above the OS
#: sleep jitter floor (multi-ms overshoots are routine on a 1-CPU box):
#: at true capacity the slip *cascades* and miss rates hit tens of
#: percent, so a generous threshold still finds the same knee.
MISS_THRESHOLD_S = 0.020

#: A rung is sustainable when fewer than this fraction of batches miss.
MISS_RATE_CEILING = 0.01

#: A failed rung is re-probed this many times before it counts as the
#: ceiling. A genuine capacity break reproduces on every attempt
#: (cascading slip); a transient scheduler stall does not, and low-rate
#: rungs have so few batches that one stall clears the miss ceiling.
RUNG_RETRIES = 2

#: busy_frac above which a probe says "the CPU, not the pacer, ran out" —
#: the same self-gate the CI realtime tier uses.
BUSY_GATE = 0.8

PACKET_BYTES = 200


def _probe(tdf, pps):
    """Pace one CBR rung for the wall budget; return its measurements."""
    net = Network()
    src = net.add_node("src")
    dst = net.add_node("dst")
    # A fat, short link: serialization and queueing stay negligible so
    # the event load is the CBR schedule itself, not emergent congestion.
    net.add_link(src, dst, 1e9, 0.001)
    net.finalize()
    vmm = Hypervisor(net.sim)
    vmm.create_vm("src-vm", tdf=as_tdf(tdf), cpu_share=0.5, node=src)
    vmm.create_vm("dst-vm", tdf=as_tdf(tdf), cpu_share=0.5, node=dst)
    sink = UdpSink(UdpStack(dst), 9000)
    cbr = CbrSource(
        UdpStack(src), "dst", 9000,
        rate_bps=pps * PACKET_BYTES * 8, packet_bytes=PACKET_BYTES,
    )
    cbr.start()
    driver = RealtimeDriver(
        net.sim, RealtimeConfig(miss_threshold_s=MISS_THRESHOLD_S)
    )
    started = time.perf_counter()
    # The engine queue holds physical timestamps, so a physical horizon
    # equal to the wall budget paces exactly that much wall time.
    stats = driver.run(until=WALL_BUDGET_S)
    wall = time.perf_counter() - started
    cbr.stop()
    return {
        "virtual_pps": pps,
        "physical_pps": round(pps / float(as_tdf(tdf)), 1),
        "events": stats.events,
        "events_per_wall_s": round(stats.events / wall) if wall else 0,
        "datagrams": sink.datagrams,
        "miss_rate": round(stats.miss_rate, 5),
        "deadline_misses": stats.deadline_misses,
        "max_slip_ms": round(stats.max_slip_s * 1e3, 3),
        "busy_frac": round(stats.busy_frac, 4),
        "sustainable": stats.miss_rate < MISS_RATE_CEILING,
    }


def _capacity_ladder(tdf):
    """Climb the rate ladder at one TDF until a rung reproducibly fails."""
    probes = []
    max_sustainable = 0
    saturated_cpu = False
    retried = 0
    for pps in PPS_LADDER:
        probe = _probe(tdf, pps)
        attempts = 1
        while not probe["sustainable"] and attempts <= RUNG_RETRIES:
            retried += 1
            attempts += 1
            probe = _probe(tdf, pps)
        probe["attempts"] = attempts
        probes.append(probe)
        if not probe["sustainable"]:
            saturated_cpu = probe["busy_frac"] > BUSY_GATE
            break
        max_sustainable = pps
    return {
        "tdf": tdf,
        "max_sustainable_pps": max_sustainable,
        "ladder_exhausted": max_sustainable == PPS_LADDER[-1],
        "cpu_saturated_at_break": saturated_cpu,
        "rung_retries": retried,
        "probes": probes,
    }


def test_realtime_capacity_vs_tdf(bench_provenance):
    ladders = [_capacity_ladder(tdf) for tdf in TDFS]

    # The acceptance point: the fig3 profile (100 Mbps / 40 ms) as a
    # paced bulk-TCP run at TDF 10, sized to ~2 s of wall clock.
    fig3 = run_bulk(
        NetworkProfile.from_rtt(mbps(100), ms(40)),
        tdf=10, duration_s=0.2, warmup_s=0.05,
        realtime=RealtimeConfig(miss_threshold_s=0.050),
    )
    fig3_stats = fig3.realtime_stats
    fig3_healthy = fig3_stats["busy_frac"] <= BUSY_GATE

    base = ladders[0]
    top = ladders[-1]
    # The headline bar only means something when TDF 1 genuinely hit a
    # ceiling inside the ladder. (Whether the break came from pacing
    # overhead or raw event-execution cost is recorded per ladder as
    # ``cpu_saturated_at_break`` but does not gate: both are wall-time
    # exhaustion, which is exactly what dilation buys back.)
    bar_meaningful = not base["ladder_exhausted"]

    record = {
        "wall_budget_s": WALL_BUDGET_S,
        "packet_bytes": PACKET_BYTES,
        "miss_threshold_s": MISS_THRESHOLD_S,
        "miss_rate_ceiling": MISS_RATE_CEILING,
        "pps_ladder": list(PPS_LADDER),
        "capacity": ladders,
        "fig3_realtime_tdf10": {
            "tdf": 10,
            "duration_s": 0.2,
            "warmup_s": 0.05,
            "goodput_mbps": round(fig3.goodput_bps / 1e6, 3),
            **{k: fig3_stats[k] for k in (
                "events", "batches", "deadline_misses", "miss_rate",
                "max_slip_s", "busy_frac", "wall_s",
            )},
            "asserted": fig3_healthy,
        },
        **bench_provenance(bar_meaningful and fig3_healthy),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    print()
    for ladder in ladders:
        tail = ladder["probes"][-1]
        print(
            f"tdf {ladder['tdf']:>2}: sustainable "
            f"{ladder['max_sustainable_pps']:>7,} virtual pps"
            + (" (ladder exhausted)" if ladder["ladder_exhausted"] else
               f", broke at {tail['virtual_pps']:,} "
               f"(miss_rate {tail['miss_rate']:.2%}, "
               f"busy {tail['busy_frac']:.0%})")
        )
    print(
        f"fig3 @ tdf10: {fig3_stats['events']:,} events over "
        f"{fig3_stats['wall_s']:.2f} s wall, "
        f"{fig3_stats['deadline_misses']} misses "
        f"(busy {fig3_stats['busy_frac']:.0%}) -> {BENCH_JSON.name}"
    )

    # Shape checks always run: every ladder found at least the bottom
    # rung sustainable, and paced runs really consumed the wall budget.
    for ladder in ladders:
        assert ladder["max_sustainable_pps"] >= PPS_LADDER[0], (
            f"tdf {ladder['tdf']}: even {PPS_LADDER[0]} pps missed "
            f"deadlines — see {BENCH_JSON}"
        )
    assert fig3_stats["wall_s"] >= 1.9

    if fig3_healthy:
        assert fig3_stats["miss_rate"] < MISS_RATE_CEILING, (
            f"fig3-profile bulk at TDF 10 missed "
            f"{fig3_stats['deadline_misses']} deadlines "
            f"(miss_rate {fig3_stats['miss_rate']:.2%}); see {BENCH_JSON}"
        )
    if bar_meaningful:
        assert top["max_sustainable_pps"] >= base["max_sustainable_pps"], (
            f"capacity did not grow with dilation: tdf {top['tdf']} "
            f"sustained {top['max_sustainable_pps']} pps vs "
            f"{base['max_sustainable_pps']} at tdf 1 — see {BENCH_JSON}"
        )
