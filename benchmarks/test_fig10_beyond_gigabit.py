"""F10 — beyond line rate: 10 Gbps paths on 1 Gbps hardware (DESIGN.md: F10)."""

from conftest import regenerate


def test_fig10_beyond_gigabit(benchmark):
    regenerate(benchmark, "fig10")
