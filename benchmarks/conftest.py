"""Shared machinery for the figure benchmarks.

Each benchmark regenerates one table/figure of the paper via the harness
registry, prints the paper-style rows (run pytest with ``-s`` to see
them), and fails if any shape check fails. ``benchmark.pedantic`` with a
single round keeps pytest-benchmark from re-running multi-minute
simulations; the recorded time is the full figure-regeneration time.
"""

import os

import pytest

from repro.harness.figures import run_figure


@pytest.fixture(scope="session")
def cpu_count():
    """Logical cores available to this run.

    The parallelism benchmarks (``test_runner_parallel``,
    ``test_shard_scale``) record this in their BENCH json and assert
    their speedup bars only on machines with enough cores to clear them
    (``speedup_asserted`` in the json says which happened) — a shared
    1-vCPU CI runner cannot meaningfully demonstrate a speedup, but its
    correctness checks still run.
    """
    return os.cpu_count() or 1


@pytest.fixture(scope="session")
def bench_provenance(cpu_count):
    """Uniform provenance stamp for every BENCH_*.json record.

    Returns a callable: ``bench_provenance(asserted)`` yields the two keys
    each benchmark json must carry — the machine's ``cpu_count`` and
    whether the benchmark's headline bar was actually asserted on this
    machine (``speedup_asserted``). A number regenerated on a loaded
    1-vCPU CI runner is then distinguishable from one produced on a real
    box when reviewing committed BENCH files.
    """

    def stamp(speedup_asserted=True):
        return {
            "cpu_count": cpu_count,
            "speedup_asserted": bool(speedup_asserted),
        }

    return stamp


def regenerate(benchmark, figure_id):
    """Run one figure under the benchmark fixture and assert its checks."""
    result = benchmark.pedantic(
        run_figure, args=(figure_id,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    failed = result.failed_checks()
    assert not failed, f"{figure_id} shape checks failed: " + "; ".join(
        check.description for check in failed
    )
    return result
