"""Shared machinery for the figure benchmarks.

Each benchmark regenerates one table/figure of the paper via the harness
registry, prints the paper-style rows (run pytest with ``-s`` to see
them), and fails if any shape check fails. ``benchmark.pedantic`` with a
single round keeps pytest-benchmark from re-running multi-minute
simulations; the recorded time is the full figure-regeneration time.
"""

import pytest

from repro.harness.figures import run_figure


def regenerate(benchmark, figure_id):
    """Run one figure under the benchmark fixture and assert its checks."""
    result = benchmark.pedantic(
        run_figure, args=(figure_id,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    failed = result.failed_checks()
    assert not failed, f"{figure_id} shape checks failed: " + "; ".join(
        check.description for check in failed
    )
    return result
