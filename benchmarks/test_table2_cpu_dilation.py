"""T2 — CPU-bound task timing under dilation (DESIGN.md: T2)."""

from conftest import regenerate


def test_table2_cpu_dilation(benchmark):
    regenerate(benchmark, "table2")
