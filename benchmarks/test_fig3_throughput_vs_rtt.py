"""F3 — TCP throughput vs RTT, TDF {1,10,100} (DESIGN.md: F3)."""

from conftest import regenerate


def test_fig3_throughput_vs_rtt(benchmark):
    regenerate(benchmark, "fig3")
