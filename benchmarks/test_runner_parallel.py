"""Sweep-runner speedup benchmark — process-pool fan-out vs sequential.

Drives the same mid-weight figure set through ``run_sweep`` twice — once
strictly sequential in-process (``jobs=1``) and once through the process
pool — with the result cache disabled, so both runs execute every cell.
Records wall clock, speedup, and the cell count in ``BENCH_runner.json``
at the repo root.

Two assertions, one unconditional and one gated:

* the parallel figures must be **byte-identical** to the sequential ones
  (the tentpole guarantee — always checked, on any machine);
* the issue's acceptance bar — **>= 2x** speedup — is asserted only when
  the machine actually has >= 4 cores. On smaller runners (CI shared
  vCPUs, laptops on battery) the numbers are still recorded for review
  but cannot meaningfully clear a parallelism bar.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.harness.runner import run_sweep

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_runner.json"

#: Acceptance bar from the issue, asserted on >= MIN_CORES_FOR_BAR cores.
REQUIRED_SPEEDUP = 2.0
MIN_CORES_FOR_BAR = 4

#: Mid-weight figures: enough independent cells (~20) to keep a pool busy,
#: small enough that the benchmark stays in tens of seconds. The heaviest
#: single cell (fig9's swarm, ~3 s) bounds the parallel critical path.
FIGURE_IDS = ["fig9", "fig5", "ext1", "ext2", "ext3", "ext4", "table2"]


def _timed_sweep(jobs):
    started = time.perf_counter()
    outcome = run_sweep(FIGURE_IDS, jobs=jobs, cache_dir=None)
    return outcome, time.perf_counter() - started


def test_parallel_sweep_speedup(cpu_count):
    cpus = cpu_count
    jobs = max(2, min(cpus, 8))

    sequential, sequential_s = _timed_sweep(1)
    parallel, parallel_s = _timed_sweep(jobs)
    speedup = sequential_s / parallel_s if parallel_s > 0 else 0.0

    record = {
        "figures": FIGURE_IDS,
        "cells": sequential.cells_total,
        "cpu_count": cpus,
        "jobs": jobs,
        "sequential_s": round(sequential_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "required_speedup": REQUIRED_SPEEDUP,
        "speedup_asserted": cpus >= MIN_CORES_FOR_BAR,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(f"{sequential.cells_total} cells: sequential {sequential_s:.1f} s, "
          f"{jobs} jobs {parallel_s:.1f} s -> {speedup:.2f}x "
          f"({cpus} core(s)) -> {BENCH_JSON.name}")

    # The guarantee that makes the parallelism free: identical bytes.
    assert sequential.all_passed and parallel.all_passed
    for seq, par in zip(sequential.figures, parallel.figures):
        assert seq.render() == par.render(), seq.figure_id

    if cpus >= MIN_CORES_FOR_BAR:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"parallel sweep is only {speedup:.2f}x sequential on "
            f"{cpus} cores (required {REQUIRED_SPEEDUP}x); see {BENCH_JSON}"
        )
