"""A1 — negative control: unscaled physical network diverges (DESIGN.md: A1)."""

from conftest import regenerate


def test_ablation_misscaled(benchmark):
    regenerate(benchmark, "ablation1")
